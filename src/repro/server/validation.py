"""Submission-payload validation: doomed jobs are rejected at the door.

Everything a client can put in a ``POST /v1/jobs`` body is checked here,
*before* anything touches the job store: a job that would fail in the
executor with certainty (NaN power map, oversize grid, unknown optimizer)
must cost a typed 4xx, not a queue slot, a worker lease, and three retry
attempts ending in quarantine.

The validated spec is a plain JSON-serializable dict -- exactly what goes
into the durable job record -- and fully determines the deterministic work
(:mod:`repro.server.executor` rebuilds the case and config from it alone).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from ..errors import BenchmarkError, JobValidationError
from ..optimize.registry import optimizer_names

__all__ = [
    "MAX_GRID_SIZE",
    "MAX_N_WORKERS",
    "SPEC_LIMITS",
    "validate_submission",
]

#: Largest service-accepted footprint (basic cells per side).  Contest
#: cases are 51; anything past this knob is a resource-exhaustion vector,
#: not a design problem.
MAX_GRID_SIZE = 101  #: [unit: 1]

#: Smallest meaningful footprint (matches the case generator's floor).
MIN_GRID_SIZE = 9  #: [unit: 1]

#: Per-knob caps on the optimizer schedule, bounding one job's cost.
SPEC_LIMITS: Dict[str, int] = {
    "rounds": 64,
    "iterations": 256,
    "batch_size": 64,
}

#: Payload keys a submission may carry.  Unknown keys are rejected --
#: a typo'd knob silently falling back to a default is a doomed job of a
#: subtler kind.
_ALLOWED_KEYS = frozenset(
    {
        "case",
        "case_seed",
        "grid",
        "problem",
        "optimizers",
        "rounds",
        "iterations",
        "batch_size",
        "seed",
        "power_maps",
        "max_attempts",
        "n_workers",
    }
)

#: Cap on per-job evaluation pool processes (resource bound, like the
#: schedule caps above: one job must not fork the host to its knees).
MAX_N_WORKERS = 8  #: [unit: 1]


def _require_int(
    payload: Dict[str, Any],
    key: str,
    default: Optional[int],
    minimum: int,
    maximum: int,
) -> Optional[int]:
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise JobValidationError(
            f"{key} must be an integer, got {type(value).__name__}", field=key
        )
    if not minimum <= value <= maximum:
        raise JobValidationError(
            f"{key} must be in [{minimum}, {maximum}], got {value}", field=key
        )
    return value


def _validate_power_maps(raw: Any) -> List[List[List[float]]]:
    """Inline power-map override: finite, non-negative, rectangular."""
    if not isinstance(raw, list) or not raw:
        raise JobValidationError(
            "power_maps must be a non-empty list of 2-D arrays",
            field="power_maps",
        )
    maps: List[List[List[float]]] = []
    for die, rows in enumerate(raw):
        if not isinstance(rows, list) or not rows or not all(
            isinstance(row, list) and row for row in rows
        ):
            raise JobValidationError(
                f"power_maps[{die}] must be a non-empty 2-D array",
                field="power_maps",
            )
        width = len(rows[0])
        if any(len(row) != width for row in rows):
            raise JobValidationError(
                f"power_maps[{die}] is ragged (rows of different lengths)",
                field="power_maps",
            )
        if len(rows) > MAX_GRID_SIZE or width > MAX_GRID_SIZE:
            raise JobValidationError(
                f"power_maps[{die}] is {len(rows)}x{width}; the service "
                f"caps footprints at {MAX_GRID_SIZE}x{MAX_GRID_SIZE}",
                field="power_maps",
            )
        clean: List[List[float]] = []
        for r, row in enumerate(rows):
            out_row: List[float] = []
            for c, cell in enumerate(row):
                if isinstance(cell, bool) or not isinstance(
                    cell, (int, float)
                ):
                    raise JobValidationError(
                        f"power_maps[{die}][{r}][{c}] is not a number",
                        field="power_maps",
                    )
                value = float(cell)
                if math.isnan(value):
                    raise JobValidationError(
                        f"power_maps[{die}][{r}][{c}] is NaN",
                        field="power_maps",
                    )
                if math.isinf(value):
                    raise JobValidationError(
                        f"power_maps[{die}][{r}][{c}] is infinite",
                        field="power_maps",
                    )
                if value < 0.0:
                    raise JobValidationError(
                        f"power_maps[{die}][{r}][{c}] is negative "
                        f"({value}); power densities are non-negative",
                        field="power_maps",
                    )
                out_row.append(value)
            clean.append(out_row)
        maps.append(clean)
    return maps


def validate_submission(payload: Any) -> Dict[str, Any]:
    """Validate one submission payload into a durable job spec.

    Args:
        payload: The parsed JSON request body.

    Returns:
        A JSON-serializable spec dict with every knob present and typed
        (missing optional knobs filled with their defaults).

    Raises:
        JobValidationError: On every malformed, out-of-range, unknown, or
            doomed-by-construction payload; ``field`` names the offender.
    """
    if not isinstance(payload, dict):
        raise JobValidationError(
            f"submission body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _ALLOWED_KEYS)
    if unknown:
        raise JobValidationError(
            f"unknown submission keys: {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(_ALLOWED_KEYS))})",
            field=unknown[0],
        )

    case = _require_int(payload, "case", None, 1, 5)
    case_seed = _require_int(payload, "case_seed", None, 0, 2**31 - 1)
    if (case is None) == (case_seed is None):
        raise JobValidationError(
            "exactly one of 'case' (contest case 1-5) or 'case_seed' "
            "(generated case) is required",
            field="case" if case is not None else "case_seed",
        )
    grid = _require_int(payload, "grid", None, MIN_GRID_SIZE, MAX_GRID_SIZE)

    problem = _require_int(payload, "problem", 1, 1, 2)
    seed = _require_int(payload, "seed", 0, 0, 2**31 - 1)
    max_attempts = _require_int(payload, "max_attempts", 3, 1, 10)
    n_workers = _require_int(payload, "n_workers", 1, 1, MAX_N_WORKERS)

    schedule = {
        key: _require_int(payload, key, default, 1, SPEC_LIMITS[key])
        for key, default in (
            ("rounds", 2),
            ("iterations", 4),
            ("batch_size", 4),
        )
    }

    optimizers = payload.get("optimizers", ["multi_fidelity"])
    if (
        not isinstance(optimizers, list)
        or not optimizers
        or not all(isinstance(name, str) for name in optimizers)
    ):
        raise JobValidationError(
            "optimizers must be a non-empty list of registry names",
            field="optimizers",
        )
    registered = optimizer_names()
    unknown_opts = sorted(set(optimizers) - set(registered))
    if unknown_opts:
        raise JobValidationError(
            f"unknown optimizer(s): {', '.join(unknown_opts)}; "
            f"registered: {', '.join(registered)}",
            field="optimizers",
        )

    power_maps: Optional[List[List[List[float]]]] = None
    if "power_maps" in payload:
        power_maps = _validate_power_maps(payload["power_maps"])

    spec = {
        "case": case,
        "case_seed": case_seed,
        "grid": grid,
        "problem": problem,
        "optimizers": list(optimizers),
        "rounds": schedule["rounds"],
        "iterations": schedule["iterations"],
        "batch_size": schedule["batch_size"],
        "seed": seed,
        "max_attempts": max_attempts,
        "power_maps": power_maps,
        "n_workers": n_workers,
    }

    # Prove the spec constructs: materialize the case once at the door so
    # an impossible geometry (grid too small for the contest TSV pattern,
    # power-map shape mismatch) is a 400 here, not a quarantined job after
    # max_attempts in the queue.  Bounded by MAX_GRID_SIZE above.
    from .executor import case_from_spec  # deferred: keeps import light

    try:
        case_from_spec(spec)
    except BenchmarkError as exc:
        raise JobValidationError(f"spec does not construct: {exc}") from exc
    return spec
