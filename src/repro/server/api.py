"""The HTTP face of the design service (stdlib ``http.server`` only).

Routes::

    POST /v1/jobs                submit a job        -> 202 {job_id, ...}
    GET  /v1/jobs                list jobs           -> 200 {jobs: [...]}
    GET  /v1/jobs/<id>           job status          -> 200 {record}
    GET  /v1/jobs/<id>/result    completed result    -> 200 {result}
    GET  /v1/jobs/<id>/events    lifecycle events    -> 200 {events, next_offset}
    GET  /healthz                liveness + detail   -> 200 always (while up)
    GET  /readyz                 readiness           -> 200 ready / 503 not

Error discipline: every typed :class:`~repro.errors.JobError` maps to one
status code (400 validation, 404 unknown job, 409 wrong state, 429 queue
full with ``Retry-After``); unexpected exceptions become an opaque 500
without killing the serving thread.  This module is therefore a sanctioned
error boundary (``repro-lint-scope: error-boundary``): the process-edge
handler may catch broad ``Exception`` exactly like the CLI main.

Graceful degradation: a draining server (SIGTERM received, see
:mod:`repro.server.service`) rejects new submissions with 503 +
``Retry-After`` while read paths keep serving, so clients can poll their
jobs to the end of the drain window.

``repro-lint-scope: determinism-boundary`` -- HTTP plumbing is wall-clock
territory.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from .. import profiling
from ..errors import (
    JobError,
    JobNotFoundError,
    JobQueueFullError,
    JobStateError,
    JobValidationError,
)
from .jobstore import JobStore
from .records import JobRecord
from .validation import validate_submission

__all__ = ["ApiServer", "MAX_BODY_BYTES"]

#: Largest accepted request body; past this the submission is a 400, not
#: an allocation.
MAX_BODY_BYTES = 4 * 1024 * 1024  #: [unit: B]

#: JobError subclass -> HTTP status.
_STATUS: Tuple[Tuple[type, int], ...] = (
    (JobValidationError, 400),
    (JobNotFoundError, 404),
    (JobStateError, 409),
    (JobQueueFullError, 429),
)


def _record_view(record: JobRecord) -> Dict[str, Any]:
    """The client-facing projection of a job record."""
    return {
        "job_id": record.job_id,
        "tenant": record.tenant,
        "state": record.state,
        "attempts": record.attempts,
        "max_attempts": record.max_attempts,
        "submitted_at": record.submitted_at,
        "updated_at": record.updated_at,
        "not_before": record.not_before,
        "worker": record.worker,
        "error": record.error,
        "spec": record.spec,
    }


class ApiServer:
    """The service's HTTP endpoint over one :class:`JobStore`.

    Args:
        store: The durable queue all requests operate on.
        host / port: Bind address (``port=0`` picks a free port; see
            :attr:`port` after construction).
        ready_check: Extra readiness predicate composed into ``/readyz``
            (the service wires pool/worker health through this).
        max_queue_depth: ``/readyz`` reports not-ready once this many
            jobs are waiting or running (backpressure signal for load
            balancers; submissions still work until tenant caps bite).
    """

    def __init__(
        self,
        store: JobStore,
        host: str = "127.0.0.1",
        port: int = 0,
        ready_check: Optional[Callable[[], Tuple[bool, str]]] = None,
        max_queue_depth: int = 64,
    ):
        self.store = store
        self.ready_check = ready_check
        self.max_queue_depth = int(max_queue_depth)
        self.draining = threading.Event()
        api = self

        class _Handler(BaseHTTPRequestHandler):
            # One silent line per request is still too chatty for a
            # long-poll client; the run log carries the real telemetry.
            def log_message(self, fmt: str, *args: Any) -> None:
                pass

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                api._dispatch(self, "GET")

            def do_POST(self) -> None:  # noqa: N802 (http.server API)
                api._dispatch(self, "POST")

        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return int(self.httpd.server_address[1])

    def start(self) -> None:
        """Serve in a background thread until :meth:`shutdown`."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
        )
        self._thread.start()

    def shutdown(self) -> None:
        """Stop accepting connections and join the serving thread."""
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.httpd.server_close()

    # -- dispatch ------------------------------------------------------

    def _dispatch(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        profiling.increment("server.http_requests")
        try:
            status, payload, headers = self._route(handler, method)
        except JobError as exc:
            status, payload, headers = self._job_error(exc)
        except Exception as exc:  # process edge: never kill the thread
            status = 500
            payload = {"error": "internal", "detail": type(exc).__name__}
            headers = {}
        if status >= 400:
            profiling.increment("server.http_rejects")
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", "application/json")
            handler.send_header("Content-Length", str(len(body)))
            for name, value in headers.items():
                handler.send_header(name, value)
            handler.end_headers()
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to salvage

    @staticmethod
    def _job_error(exc: JobError) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        status = 500
        for cls, code in _STATUS:
            if isinstance(exc, cls):
                status = code
                break
        payload: Dict[str, Any] = {
            "error": type(exc).__name__,
            "detail": str(exc),
        }
        headers: Dict[str, str] = {}
        field = getattr(exc, "field", None)
        if field is not None:
            payload["field"] = field
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            headers["Retry-After"] = f"{max(int(round(retry_after)), 1)}"
        return status, payload, headers

    def _route(
        self, handler: BaseHTTPRequestHandler, method: str
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        path, _, query = handler.path.partition("?")
        parts = [p for p in path.split("/") if p]
        if method == "GET":
            if parts == ["healthz"]:
                return 200, self._health(), {}
            if parts == ["readyz"]:
                return self._ready()
            if parts == ["v1", "jobs"]:
                return (
                    200,
                    {
                        "jobs": [
                            _record_view(r) for r in self.store.list_jobs()
                        ]
                    },
                    {},
                )
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                return 200, _record_view(self.store.get(parts[2])), {}
            if len(parts) == 4 and parts[:2] == ["v1", "jobs"]:
                if parts[3] == "result":
                    return 200, {"result": self.store.read_result(parts[2])}, {}
                if parts[3] == "events":
                    offset = self._offset(query)
                    events = self.store.events(parts[2], offset)
                    return (
                        200,
                        {
                            "events": events,
                            "next_offset": offset + len(events),
                        },
                        {},
                    )
        if method == "POST" and parts == ["v1", "jobs"]:
            return self._submit(handler)
        raise JobNotFoundError(f"no route {method} {path}")

    @staticmethod
    def _offset(query: str) -> int:
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == "offset":
                try:
                    return max(int(value), 0)
                except ValueError as exc:
                    raise JobValidationError(
                        f"offset must be an integer, got {value!r}",
                        field="offset",
                    ) from exc
        return 0

    # -- handlers ------------------------------------------------------

    def _submit(
        self, handler: BaseHTTPRequestHandler
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        if self.draining.is_set():
            return (
                503,
                {
                    "error": "draining",
                    "detail": "server is draining; submit elsewhere",
                },
                {"Retry-After": "5"},
            )
        try:
            length = int(handler.headers.get("Content-Length", "0"))
        except ValueError as exc:
            raise JobValidationError("bad Content-Length header") from exc
        if length <= 0:
            raise JobValidationError("submission body is required")
        if length > MAX_BODY_BYTES:
            raise JobValidationError(
                f"submission body is {length} bytes; cap is {MAX_BODY_BYTES}"
            )
        raw = handler.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JobValidationError(
                f"submission body is not valid JSON: {exc}"
            ) from exc
        tenant = handler.headers.get("X-Tenant", "default").strip() or "default"
        spec = validate_submission(payload)
        record = self.store.submit(spec, tenant=tenant)
        return 202, _record_view(record), {}

    def _health(self) -> Dict[str, Any]:
        depth = self.store.queue_depth()
        info: Dict[str, Any] = {
            "status": "draining" if self.draining.is_set() else "ok",
            "queue": depth,
        }
        if self.ready_check is not None:
            ready, detail = self.ready_check()
            info["workers"] = detail
            info["degraded"] = not ready
        return info

    def _ready(self) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        reasons = []
        if self.draining.is_set():
            reasons.append("draining")
        depth = self.store.queue_depth()
        waiting = depth.get("pending", 0) + depth.get("running", 0)
        if waiting >= self.max_queue_depth:
            reasons.append(
                f"queue depth {waiting} >= {self.max_queue_depth}"
            )
        if self.ready_check is not None:
            ready, detail = self.ready_check()
            if not ready:
                reasons.append(detail)
        if reasons:
            return (
                503,
                {"ready": False, "reasons": reasons, "queue": depth},
                {"Retry-After": "5"},
            )
        return 200, {"ready": True, "queue": depth}, {}
