"""The HTTP face of the design service (stdlib ``http.server`` only).

Routes::

    POST /v1/jobs                submit a job        -> 202 {job_id, ...}
    GET  /v1/jobs                list jobs           -> 200 {jobs: [...]}
    GET  /v1/jobs/<id>           job status          -> 200 {record}
    GET  /v1/jobs/<id>/result    completed result    -> 200 {result}
    GET  /v1/jobs/<id>/events    lifecycle events    -> 200 {events, next_offset}
    GET  /v1/jobs/<id>/events?follow=1   chunked JSONL live tail
    GET  /v1/jobs/<id>/trace     stitched Chrome trace export (Perfetto)
    GET  /metrics                Prometheus text exposition (0.0.4)
    GET  /healthz                liveness + detail   -> 200 always (while up)
    GET  /readyz                 readiness           -> 200 ready / 503 not

The ``follow=1`` stream is an HTTP/1.1 chunked response tailing the job's
append-only event log: one JSON object per line, ``#hb`` comment lines
during idle gaps (keeps proxies from buffering and detects dead clients
within one heartbeat), and a final synthetic ``stream.end`` record naming
why the stream closed (terminal state, drain, shutdown, deletion) plus the
offset to resume from.

Error discipline: every typed :class:`~repro.errors.JobError` maps to one
status code (400 validation, 404 unknown job, 409 wrong state, 429 queue
full with ``Retry-After``); unexpected exceptions become an opaque 500
without killing the serving thread.  This module is therefore a sanctioned
error boundary (``repro-lint-scope: error-boundary``): the process-edge
handler may catch broad ``Exception`` exactly like the CLI main.

Graceful degradation: a draining server (SIGTERM received, see
:mod:`repro.server.service`) rejects new submissions with 503 +
``Retry-After`` while read paths keep serving, so clients can poll their
jobs to the end of the drain window.

``repro-lint-scope: determinism-boundary`` -- HTTP plumbing is wall-clock
territory.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .. import profiling, telemetry
from ..errors import (
    JobError,
    JobNotFoundError,
    JobQueueFullError,
    JobStateError,
    JobValidationError,
)
from ..telemetry.promexpo import PROMETHEUS_CONTENT_TYPE, render_prometheus
from .jobstore import JobStore
from .records import (
    JobRecord,
    STATE_COMPLETED,
    STATE_QUARANTINED,
    STATE_RUNNING,
)
from .validation import validate_submission

__all__ = ["ApiServer", "MAX_BODY_BYTES"]

#: Largest accepted request body; past this the submission is a 400, not
#: an allocation.
MAX_BODY_BYTES = 4 * 1024 * 1024  #: [unit: B]

#: JobError subclass -> HTTP status.
_STATUS: Tuple[Tuple[type, int], ...] = (
    (JobValidationError, 400),
    (JobNotFoundError, 404),
    (JobStateError, 409),
    (JobQueueFullError, 429),
)

#: The event type a terminal record state is announced by; the streamer
#: waits briefly for it because the record flip lands an instant before
#: the final event append.
_FINAL_EVENT = {
    STATE_COMPLETED: "job.completed",
    STATE_QUARANTINED: "job.quarantined",
}


def _record_view(record: JobRecord) -> Dict[str, Any]:
    """The client-facing projection of a job record."""
    return {
        "job_id": record.job_id,
        "tenant": record.tenant,
        "state": record.state,
        "attempts": record.attempts,
        "max_attempts": record.max_attempts,
        "submitted_at": record.submitted_at,
        "updated_at": record.updated_at,
        "not_before": record.not_before,
        "worker": record.worker,
        "error": record.error,
        "spec": record.spec,
        "trace_id": record.trace_id,
    }


class ApiServer:
    """The service's HTTP endpoint over one :class:`JobStore`.

    Args:
        store: The durable queue all requests operate on.
        host / port: Bind address (``port=0`` picks a free port; see
            :attr:`port` after construction).
        ready_check: Extra readiness predicate composed into ``/readyz``
            (the service wires pool/worker health through this).
        max_queue_depth: ``/readyz`` reports not-ready once this many
            jobs are waiting or running (backpressure signal for load
            balancers; submissions still work until tenant caps bite).
        stream_heartbeat: Idle interval after which a ``follow=1`` stream
            emits a ``#hb`` comment line [unit: s] -- also bounds how long
            a dead client can pin a streaming thread.
    """

    def __init__(
        self,
        store: JobStore,
        host: str = "127.0.0.1",
        port: int = 0,
        ready_check: Optional[Callable[[], Tuple[bool, str]]] = None,
        max_queue_depth: int = 64,
        stream_heartbeat: float = 5.0,
    ):
        self.store = store
        self.ready_check = ready_check
        self.max_queue_depth = int(max_queue_depth)
        self.stream_heartbeat = float(stream_heartbeat)
        self.draining = threading.Event()
        self._stream_stop = threading.Event()
        api = self

        class _Handler(BaseHTTPRequestHandler):
            # Chunked transfer encoding (the follow=1 stream) only exists
            # in HTTP/1.1; plain responses still carry Content-Length.
            protocol_version = "HTTP/1.1"

            # One silent line per request is still too chatty for a
            # long-poll client; the run log carries the real telemetry.
            def log_message(self, fmt: str, *args: Any) -> None:
                pass

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                api._dispatch(self, "GET")

            def do_POST(self) -> None:  # noqa: N802 (http.server API)
                api._dispatch(self, "POST")

        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return int(self.httpd.server_address[1])

    def start(self) -> None:
        """Serve in a background thread until :meth:`shutdown`."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
        )
        self._thread.start()

    def shutdown(self) -> None:
        """Stop accepting connections and join the serving thread."""
        self._stream_stop.set()  # follow=1 streams end with stream.end
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.httpd.server_close()

    # -- dispatch ------------------------------------------------------

    def _dispatch(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        profiling.increment("server.http_requests")
        telemetry.set_thread_lane("api")
        path, _, query = handler.path.partition("?")
        payload: Union[Dict[str, Any], str]
        follow_job: Optional[str] = None
        offset = 0
        try:
            # The span closes before a follow=1 stream starts serving, so
            # the request row lands inside the job's tracing window
            # instead of after it (streams outlive the job).
            with telemetry.span("server.http", method=method, path=path):
                follow_job = self._follow_requested(method, path, query)
                if follow_job is not None:
                    offset = self._offset(query)
                    self.store.get(follow_job)  # 404/500 before streaming
                else:
                    status, payload, headers = self._route(handler, method)
        except JobError as exc:
            follow_job = None
            status, payload, headers = self._job_error(exc)
        except Exception as exc:  # process edge: never kill the thread
            follow_job = None
            status = 500
            payload = {"error": "internal", "detail": type(exc).__name__}
            headers = {}
        if follow_job is not None:
            self._stream_events(handler, follow_job, offset)
            return
        if status >= 400:
            profiling.increment("server.http_rejects")
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = headers.pop(
                "Content-Type", "text/plain; charset=utf-8"
            )
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", content_type)
            handler.send_header("Content-Length", str(len(body)))
            for name, value in headers.items():
                handler.send_header(name, value)
            handler.end_headers()
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to salvage

    @staticmethod
    def _job_error(exc: JobError) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        status = 500
        for cls, code in _STATUS:
            if isinstance(exc, cls):
                status = code
                break
        payload: Dict[str, Any] = {
            "error": type(exc).__name__,
            "detail": str(exc),
        }
        headers: Dict[str, str] = {}
        field = getattr(exc, "field", None)
        if field is not None:
            payload["field"] = field
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            headers["Retry-After"] = f"{max(int(round(retry_after)), 1)}"
        return status, payload, headers

    def _route(
        self, handler: BaseHTTPRequestHandler, method: str
    ) -> Tuple[int, Union[Dict[str, Any], str], Dict[str, str]]:
        path, _, query = handler.path.partition("?")
        parts = [p for p in path.split("/") if p]
        if method == "GET":
            if parts == ["healthz"]:
                return 200, self._health(), {}
            if parts == ["readyz"]:
                return self._ready()
            if parts == ["metrics"]:
                text = render_prometheus(
                    profiling.snapshot(), self.store.collect_gauges()
                )
                return 200, text, {"Content-Type": PROMETHEUS_CONTENT_TYPE}
            if parts == ["v1", "jobs"]:
                return (
                    200,
                    {
                        "jobs": [
                            _record_view(r) for r in self.store.list_jobs()
                        ]
                    },
                    {},
                )
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                return 200, _record_view(self.store.get(parts[2])), {}
            if len(parts) == 4 and parts[:2] == ["v1", "jobs"]:
                if parts[3] == "result":
                    return 200, {"result": self.store.read_result(parts[2])}, {}
                if parts[3] == "trace":
                    return 200, self.store.read_trace(parts[2]), {}
                if parts[3] == "events":
                    offset = self._offset(query)
                    limit = self._query_int(query, "limit", None, minimum=1)
                    events = self.store.events(parts[2], offset, limit)
                    return (
                        200,
                        {
                            "events": events,
                            "next_offset": offset + len(events),
                        },
                        {},
                    )
        if method == "POST" and parts == ["v1", "jobs"]:
            return self._submit(handler)
        raise JobNotFoundError(f"no route {method} {path}")

    # -- query-string parsing ------------------------------------------

    @staticmethod
    def _query_param(query: str, key: str) -> Optional[str]:
        for pair in query.split("&"):
            name, _, value = pair.partition("=")
            if name == key:
                return value
        return None

    @classmethod
    def _query_int(
        cls,
        query: str,
        key: str,
        default: Optional[int],
        minimum: int = 0,
    ) -> Optional[int]:
        """An integer query parameter, validated; 400 on garbage.

        Raises:
            JobValidationError: The value is not an integer or falls below
                ``minimum`` -- rejected explicitly instead of silently
                coerced, so a paging client notices its own bug.
        """
        value = cls._query_param(query, key)
        if value is None:
            return default
        try:
            parsed = int(value)
        except ValueError as exc:
            raise JobValidationError(
                f"{key} must be an integer, got {value!r}", field=key
            ) from exc
        if parsed < minimum:
            raise JobValidationError(
                f"{key} must be >= {minimum}, got {parsed}", field=key
            )
        return parsed

    @classmethod
    def _offset(cls, query: str) -> int:
        offset = cls._query_int(query, "offset", 0)
        assert offset is not None  # default is 0
        return offset

    @classmethod
    def _follow_requested(
        cls, method: str, path: str, query: str
    ) -> Optional[str]:
        """The job id of a ``follow=1`` events request, else ``None``."""
        if method != "GET":
            return None
        parts = [p for p in path.split("/") if p]
        if (
            len(parts) == 4
            and parts[:2] == ["v1", "jobs"]
            and parts[3] == "events"
            and cls._query_param(query, "follow") in ("1", "true", "yes")
        ):
            return parts[2]
        return None

    # -- streaming -----------------------------------------------------

    def _stream_events(
        self, handler: BaseHTTPRequestHandler, job_id: str, offset: int
    ) -> None:
        """Tail the job's event log as chunked JSONL until it terminates.

        Ends (with a synthetic ``stream.end`` record carrying the close
        reason and the resume offset) when the job reaches a terminal
        state, the server shuts down, a drain leaves the job unable to
        ever run, or the job directory vanishes.  A disconnected client is
        detected by the next write -- at worst one heartbeat later -- and
        the serving thread returns without leaking.
        """
        handler.close_connection = True  # one stream per connection
        handler.send_response(200)
        handler.send_header("Content-Type", "application/x-ndjson")
        handler.send_header("Cache-Control", "no-store")
        handler.send_header("Transfer-Encoding", "chunked")
        handler.end_headers()

        def chunk(data: bytes) -> None:
            handler.wfile.write(
                f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"
            )
            handler.wfile.flush()

        def flush_events() -> List[dict]:
            events = self.store.events(job_id, offset)
            for event in events:
                chunk(
                    json.dumps(event, sort_keys=True).encode("utf-8") + b"\n"
                )
            return events

        reason: Optional[str] = None
        try:
            delivered: set = set()
            last_write = time.monotonic()
            while reason is None:
                try:
                    record = self.store.get(job_id)
                    events = flush_events()
                except JobNotFoundError:
                    reason = "deleted"
                    break
                offset += len(events)
                delivered.update(event.get("type") for event in events)
                if events:
                    last_write = time.monotonic()
                    # A no-op unless a traced job armed the tracer; lands
                    # the API lane inside the job's tracing window so the
                    # /trace export shows the stream serving alongside it.
                    telemetry.instant(
                        "server.http",
                        path=f"/v1/jobs/{job_id}/events",
                        streamed=len(events),
                    )
                if record.terminal:
                    # The record flips terminal an instant before the final
                    # event lands in the log; linger up to one heartbeat so
                    # the job.completed/quarantined line is delivered.
                    final = _FINAL_EVENT.get(record.state)
                    deadline = time.monotonic() + self.stream_heartbeat
                    while (
                        final not in delivered
                        and time.monotonic() < deadline
                        and not self._stream_stop.is_set()
                    ):
                        time.sleep(0.05)
                        tail = flush_events()
                        offset += len(tail)
                        delivered.update(e.get("type") for e in tail)
                    reason = record.state
                elif self._stream_stop.is_set():
                    reason = "shutdown"
                elif self.draining.is_set() and record.state != STATE_RUNNING:
                    # A running job still delivers its interrupt/final
                    # events during the drain window; a pending one will
                    # never run here again.
                    reason = "draining"
                else:
                    idle = time.monotonic() - last_write
                    if idle >= self.stream_heartbeat:
                        chunk(b"#hb\n")
                        last_write = time.monotonic()
                    self._stream_stop.wait(0.1)
            chunk(
                json.dumps(
                    {
                        "type": "stream.end",
                        "reason": reason,
                        "next_offset": offset,
                    },
                    sort_keys=True,
                ).encode("utf-8")
                + b"\n"
            )
            handler.wfile.write(b"0\r\n\r\n")
            handler.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away mid-stream; nothing to salvage

    # -- handlers ------------------------------------------------------

    def _submit(
        self, handler: BaseHTTPRequestHandler
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        if self.draining.is_set():
            return (
                503,
                {
                    "error": "draining",
                    "detail": "server is draining; submit elsewhere",
                },
                {"Retry-After": "5"},
            )
        try:
            length = int(handler.headers.get("Content-Length", "0"))
        except ValueError as exc:
            raise JobValidationError("bad Content-Length header") from exc
        if length <= 0:
            raise JobValidationError("submission body is required")
        if length > MAX_BODY_BYTES:
            raise JobValidationError(
                f"submission body is {length} bytes; cap is {MAX_BODY_BYTES}"
            )
        raw = handler.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JobValidationError(
                f"submission body is not valid JSON: {exc}"
            ) from exc
        tenant = handler.headers.get("X-Tenant", "default").strip() or "default"
        spec = validate_submission(payload)
        record = self.store.submit(spec, tenant=tenant)
        return 202, _record_view(record), {}

    def _health(self) -> Dict[str, Any]:
        depth = self.store.queue_depth()
        info: Dict[str, Any] = {
            "status": "draining" if self.draining.is_set() else "ok",
            "queue": depth,
        }
        if self.ready_check is not None:
            ready, detail = self.ready_check()
            info["workers"] = detail
            info["degraded"] = not ready
        return info

    def _ready(self) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        reasons = []
        if self.draining.is_set():
            reasons.append("draining")
        samples = self.store.collect_gauges()
        depth: Dict[str, int] = {}
        gauges: Dict[str, float] = {
            "queue_depth": 0,
            "oldest_pending_age_s": 0.0,
            "expired_lease_count": 0,
        }
        for sample in samples:
            name, value = sample["name"], sample["value"]
            if name == "server.queue_depth":
                state = sample["labels"].get("state", "")
                depth[state] = int(value)
                if state in ("pending", "running"):
                    gauges["queue_depth"] += int(value)
            elif name == "server.oldest_pending_age_s":
                gauges["oldest_pending_age_s"] = value
            elif name == "server.expired_leases":
                gauges["expired_lease_count"] = int(value)
        # One collection feeds both this payload and /metrics, so the
        # backpressure decision and the Prometheus scrape agree exactly.
        waiting = int(gauges["queue_depth"])
        if waiting >= self.max_queue_depth:
            reasons.append(
                f"queue depth {waiting} >= {self.max_queue_depth}"
            )
        if self.ready_check is not None:
            ready, detail = self.ready_check()
            if not ready:
                reasons.append(detail)
        payload: Dict[str, Any] = {"queue": depth, "gauges": gauges}
        if reasons:
            payload.update(ready=False, reasons=reasons)
            return 503, payload, {"Retry-After": "5"}
        payload["ready"] = True
        return 200, payload, {}
