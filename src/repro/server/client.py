"""A small urllib client for the design service (``repro submit`` uses it).

Stdlib-only, like the server.  Every HTTP-level failure is translated back
into the same typed :class:`~repro.errors.JobError` family the server
raised -- a 404 comes back as :class:`~repro.errors.JobNotFoundError`, a
429 as :class:`~repro.errors.JobQueueFullError` carrying the server's
``Retry-After``, and so on -- so callers handle one error vocabulary on
both sides of the wire.

``repro-lint-scope: determinism-boundary`` -- polling is wall-clock.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from ..errors import (
    JobError,
    JobNotFoundError,
    JobQueueFullError,
    JobStateError,
    JobValidationError,
)

__all__ = ["ServiceClient"]

#: HTTP status -> raised error class (the inverse of the API's mapping).
_ERRORS = {
    400: JobValidationError,
    404: JobNotFoundError,
    409: JobStateError,
    429: JobQueueFullError,
}


class ServiceClient:
    """Client of one service endpoint.

    Args:
        base_url: e.g. ``http://127.0.0.1:8752`` (no trailing slash).
        timeout: Per-request socket timeout [unit: s].
        tenant: Tenant id sent as ``X-Tenant`` on submissions.
    """

    def __init__(
        self, base_url: str, timeout: float = 10.0, tenant: str = "default"
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.tenant = tenant

    # -- raw request ---------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={
                "Content-Type": "application/json",
                "X-Tenant": self.tenant,
            },
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._translate(exc) from exc
        except urllib.error.URLError as exc:
            raise JobError(
                f"service unreachable at {self.base_url}: {exc.reason}"
            ) from exc

    @staticmethod
    def _translate(exc: urllib.error.HTTPError) -> JobError:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            detail = payload.get("detail", payload.get("error", ""))
        except (ValueError, UnicodeDecodeError):
            detail = exc.reason
        cls = _ERRORS.get(exc.code)
        if cls is JobQueueFullError:
            try:
                retry_after = float(exc.headers.get("Retry-After", "1"))
            except (TypeError, ValueError):
                retry_after = 1.0
            return JobQueueFullError(detail, retry_after=retry_after)
        if cls is not None:
            return cls(detail)
        return JobError(f"HTTP {exc.code}: {detail}")

    # -- API surface ---------------------------------------------------

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a job; returns the created record view (has ``job_id``)."""
        return self._request("POST", "/v1/jobs", body=payload)

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's current record view."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        """All jobs the service knows about."""
        return self._request("GET", "/v1/jobs")["jobs"]

    def result(self, job_id: str) -> Dict[str, Any]:
        """The completed job's result payload (409 until completed)."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")["result"]

    def events(
        self, job_id: str, offset: int = 0, limit: Optional[int] = None
    ) -> Dict[str, Any]:
        """Lifecycle events from ``offset``; has ``events``/``next_offset``."""
        path = f"/v1/jobs/{job_id}/events?offset={int(offset)}"
        if limit is not None:
            path += f"&limit={int(limit)}"
        return self._request("GET", path)

    def trace(self, job_id: str) -> Dict[str, Any]:
        """The job's stitched Chrome trace export (409 until exported)."""
        return self._request("GET", f"/v1/jobs/{job_id}/trace")

    def metrics(self) -> str:
        """The raw ``/metrics`` Prometheus exposition text."""
        request = urllib.request.Request(
            self.base_url + "/metrics", headers={"X-Tenant": self.tenant}
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise self._translate(exc) from exc
        except urllib.error.URLError as exc:
            raise JobError(
                f"service unreachable at {self.base_url}: {exc.reason}"
            ) from exc

    def follow_events(
        self,
        job_id: str,
        offset: int = 0,
        read_timeout: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's events live until the stream ends.

        Consumes the chunked ``follow=1`` JSONL stream: heartbeat comment
        lines are swallowed, every JSON event (including the final
        synthetic ``stream.end`` record carrying the close reason and
        resume offset) is yielded.  The generator returns after
        ``stream.end``; closing it early just drops the connection, which
        the server notices within one heartbeat.

        Args:
            read_timeout: Socket read timeout [unit: s].  Must exceed the
                server's heartbeat interval; defaults to the larger of the
                client timeout and 30 s.
        """
        timeout = (
            max(self.timeout, 30.0) if read_timeout is None else read_timeout
        )
        request = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/events"
            f"?follow=1&offset={int(offset)}",
            headers={"X-Tenant": self.tenant},
        )
        try:
            response = urllib.request.urlopen(request, timeout=timeout)
        except urllib.error.HTTPError as exc:
            raise self._translate(exc) from exc
        except urllib.error.URLError as exc:
            raise JobError(
                f"service unreachable at {self.base_url}: {exc.reason}"
            ) from exc
        try:
            with response:
                for raw in response:
                    line = raw.decode("utf-8").strip()
                    if not line or line.startswith("#"):
                        continue  # heartbeat / comment
                    event = json.loads(line)
                    yield event
                    if event.get("type") == "stream.end":
                        return
        except (OSError, ValueError) as exc:
            raise JobError(
                f"event stream for {job_id} broke: {exc}"
            ) from exc

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.25,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the record.

        Raises:
            JobStateError: ``timeout`` elapsed first, or the job was
                quarantined (the record's ``error`` is in the message).
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] == "completed":
                return record
            if record["state"] == "quarantined":
                raise JobStateError(
                    f"job {job_id} quarantined after "
                    f"{record['attempts']} attempts: {record['error']}"
                )
            if time.monotonic() >= deadline:
                raise JobStateError(
                    f"job {job_id} still {record['state']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_interval)
