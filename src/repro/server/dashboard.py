"""``repro top``: a stdlib ANSI terminal dashboard for the design service.

Polls ``GET /metrics`` (parsed with
:func:`repro.telemetry.promexpo.parse_prometheus_text` -- the dashboard is
deliberately a consumer of the public scrape format, not of any private
endpoint) and ``GET /v1/jobs``, and renders:

* queue depth by state and per-tenant active jobs,
* lease health: active/expired counts and per-worker heartbeat age,
* claim->complete latency quantiles (p50/p90/p99) recovered from the
  ``repro_server_job_duration_seconds`` histogram via
  :func:`~repro.telemetry.promexpo.histogram_quantile`,
* a live score trajectory per job, tailed incrementally from the events
  endpoint (offset-tracked, so each poll fetches only new rounds).

Rendering is a pure function of the polled state (:func:`render`), which
is what the tests exercise; :func:`run_top` adds the poll/clear/sleep loop
around it.  ANSI clear-screen instead of curses keeps the module importable
and testable anywhere a terminal is not guaranteed.

``repro-lint-scope: determinism-boundary`` -- a live dashboard is
wall-clock territory.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Mapping, Optional, TextIO, Tuple

from ..errors import JobError, TelemetryError
from ..telemetry.promexpo import histogram_quantile, parse_prometheus_text
from .client import ServiceClient

__all__ = ["TopMonitor", "render", "run_top"]

#: Jobs shown (and trajectory-tracked) per refresh, newest first.
MAX_JOBS = 8

#: Trailing scores shown per job trajectory.
MAX_TRAJECTORY = 5

#: ANSI: clear screen, cursor home.
_CLEAR = "\x1b[2J\x1b[H"

#: The exported family claim->complete latency quantiles come from.
_LATENCY_FAMILY = "repro_server_job_duration_seconds"


def _samples(
    families: Mapping[str, Any], family: str
) -> List[Dict[str, Any]]:
    data = families.get(family)
    return list(data["samples"]) if data else []


def _gauge_total(families: Mapping[str, Any], family: str) -> float:
    return sum(sample["value"] for sample in _samples(families, family))


def _gauge_by_label(
    families: Mapping[str, Any], family: str, label: str
) -> Dict[str, float]:
    return {
        sample["labels"].get(label, ""): sample["value"]
        for sample in _samples(families, family)
    }


def _latency_buckets(
    families: Mapping[str, Any]
) -> List[Tuple[float, float]]:
    buckets: List[Tuple[float, float]] = []
    for sample in _samples(families, _LATENCY_FAMILY):
        if not sample["name"].endswith("_bucket"):
            continue
        le = sample["labels"].get("le", "")
        bound = float("inf") if le == "+Inf" else float(le)
        buckets.append((bound, sample["value"]))
    return sorted(buckets)


class TopMonitor:
    """Incremental poller behind the dashboard (one per ``repro top``)."""

    def __init__(self, client: ServiceClient):
        self.client = client
        self._offsets: Dict[str, int] = {}
        self._trajectories: Dict[str, List[float]] = {}

    def poll(self) -> Dict[str, Any]:
        """One scrape of metrics + jobs + fresh per-job round scores."""
        families = parse_prometheus_text(self.client.metrics())
        jobs = self.client.jobs()
        for job in jobs[-MAX_JOBS:]:
            self._tail_scores(job["job_id"])
        return {
            "families": families,
            "jobs": jobs,
            "trajectories": {
                job_id: list(scores)
                for job_id, scores in self._trajectories.items()
            },
        }

    def _tail_scores(self, job_id: str) -> None:
        offset = self._offsets.get(job_id, 0)
        try:
            page = self.client.events(job_id, offset=offset, limit=500)
        except JobError:
            return  # the job vanished between listing and tailing
        self._offsets[job_id] = int(page.get("next_offset", offset))
        trajectory = self._trajectories.setdefault(job_id, [])
        for event in page.get("events", []):
            if event.get("type") != "portfolio.round":
                continue
            verified = event.get("verified")
            if isinstance(verified, (int, float)):
                trajectory.append(float(verified))


def render(state: Mapping[str, Any], now: Optional[float] = None) -> str:
    """The dashboard screen for one polled ``state`` (pure; testable)."""
    families = state.get("families", {})
    jobs = list(state.get("jobs", []))
    trajectories = state.get("trajectories", {})
    now = time.time() if now is None else now

    lines: List[str] = ["repro top -- design service"]
    depth = _gauge_by_label(families, "repro_server_queue_depth", "state")
    if depth:
        lines.append(
            "queue   "
            + "  ".join(f"{st} {int(n)}" for st, n in sorted(depth.items()))
        )
    else:
        lines.append("queue   (no data)")
    active = int(_gauge_total(families, "repro_server_active_leases"))
    expired = int(_gauge_total(families, "repro_server_expired_leases"))
    oldest = _gauge_total(families, "repro_server_oldest_pending_age_s")
    lines.append(
        f"leases  active {active}  expired {expired}  "
        f"oldest-pending {oldest:.1f}s"
    )
    heartbeats = _gauge_by_label(
        families, "repro_server_worker_heartbeat_age_s", "worker"
    )
    if heartbeats:
        lines.append(
            "workers "
            + "  ".join(
                f"{worker} hb {age:.1f}s"
                for worker, age in sorted(heartbeats.items())
            )
        )
    buckets = _latency_buckets(families)
    if buckets and buckets[-1][1] > 0:
        try:
            p50 = histogram_quantile(buckets, 0.50)
            p90 = histogram_quantile(buckets, 0.90)
            p99 = histogram_quantile(buckets, 0.99)
            lines.append(
                f"latency p50 {p50:.2f}s  p90 {p90:.2f}s  p99 {p99:.2f}s  "
                f"(n={int(buckets[-1][1])})"
            )
        except TelemetryError:
            pass  # a malformed scrape renders everything else anyway
    tenants = _gauge_by_label(
        families, "repro_server_tenant_active_jobs", "tenant"
    )
    if tenants:
        lines.append(
            "tenants "
            + "  ".join(
                f"{tenant} {int(n)}"
                for tenant, n in sorted(tenants.items())
            )
        )
    lines.append("")
    lines.append("jobs (newest last)")
    for job in jobs[-MAX_JOBS:]:
        job_id = job.get("job_id", "?")
        age = max(now - float(job.get("submitted_at", now)), 0.0)
        row = (
            f"  {job_id[:18]:<18} {job.get('state', '?'):<12} "
            f"attempt {job.get('attempts', 0)}/{job.get('max_attempts', 0)} "
            f"age {age:6.1f}s"
        )
        scores = trajectories.get(job_id, [])
        if scores:
            row += "  score " + " -> ".join(
                f"{score:.4g}" for score in scores[-MAX_TRAJECTORY:]
            )
        if job.get("error"):
            row += f"  [{job['error']}]"
        lines.append(row)
    if not jobs:
        lines.append("  (no jobs)")
    return "\n".join(lines)


def run_top(
    url: str,
    interval: float = 2.0,
    iterations: int = 0,
    out: Optional[TextIO] = None,
    client: Optional[ServiceClient] = None,
    clear: bool = True,
) -> int:
    """Poll-and-render loop; ``iterations=0`` runs until interrupted.

    Returns the number of refreshes rendered (Ctrl-C exits cleanly).
    """
    client = client or ServiceClient(url)
    out = sys.stdout if out is None else out
    monitor = TopMonitor(client)
    count = 0
    try:
        while True:
            try:
                state = monitor.poll()
            except (JobError, TelemetryError) as exc:
                screen = f"repro top -- {url}\n  unreachable: {exc}"
            else:
                screen = render(state)
            if clear:
                out.write(_CLEAR)
            out.write(screen + "\n")
            out.flush()
            count += 1
            if iterations and count >= iterations:
                return count
            time.sleep(interval)
    except KeyboardInterrupt:
        return count
