"""Service composition: store + workers + reaper + HTTP, one process.

:class:`DesignService` wires the pieces together the way ``repro serve``
runs them:

* one :class:`~repro.server.jobstore.JobStore` on a chosen root,
* ``n_workers`` :class:`~repro.server.worker.Worker` threads claiming and
  executing jobs (simulation-mode executor by default),
* one :class:`~repro.server.worker.Reaper` thread reclaiming expired
  leases,
* one :class:`~repro.server.api.ApiServer` exposing the HTTP routes, with
  a readiness hook that reports dead worker threads and evaluation-pool
  degradation (the ``parallel.degraded`` counter).

Graceful shutdown (SIGTERM or :meth:`stop`): flip the API into draining
mode (submissions get 503 + ``Retry-After``, reads keep serving), set the
workers' stop flag so in-flight jobs checkpoint at the next round boundary
and return to ``pending`` -- un-attempted, resumable by the next process --
then join every thread and close the listener.  Nothing is lost; that is
the whole point of the durable queue underneath.

``repro-lint-scope: determinism-boundary`` -- process lifecycle is
wall-clock territory.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import List, Optional, Tuple, Union

from .. import profiling
from ..telemetry import runlog
from .api import ApiServer
from .executor import Executor, SimulationExecutor
from .jobstore import JobStore
from .worker import Reaper, Worker

__all__ = ["DesignService"]


class DesignService:
    """The whole design-as-a-service process, minus signal handling.

    Args:
        root: Job-store root directory.
        host / port: API bind address (``port=0`` picks a free port).
        n_workers: Worker threads executing jobs.
        tenant_cap: Per-tenant active-job cap (429 past it).
        lease_ttl: Worker lease TTL [unit: s]; recovery latency after a
            worker SIGKILL is about one TTL plus a reaper sweep.
        executor: Execution backend shared by all workers (defaults to
            in-process simulation; the remote-shard seam).
        run_log: Optional JSONL path for service lifecycle events.
        trace_jobs: Export a stitched Chrome/Perfetto trace per executed
            job (``GET /v1/jobs/<id>/trace``); off by default because the
            tracer is live overhead on every span site.
        stream_heartbeat: Idle heartbeat interval of ``follow=1`` event
            streams [unit: s].
    """

    def __init__(
        self,
        root: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        n_workers: int = 1,
        tenant_cap: int = 8,
        lease_ttl: float = 30.0,
        executor: Optional[Executor] = None,
        run_log: Optional[str] = None,
        trace_jobs: bool = False,
        stream_heartbeat: float = 5.0,
    ):
        self.store = JobStore(root, tenant_cap=tenant_cap, lease_ttl=lease_ttl)
        self.executor = executor or SimulationExecutor()
        self._stop = threading.Event()
        self.workers = [
            Worker(
                self.store,
                self.executor,
                worker_id=f"worker-{i}",
                trace_jobs=trace_jobs,
            )
            for i in range(max(n_workers, 1))
        ]
        self.reaper = Reaper(self.store)
        self.api = ApiServer(
            self.store,
            host=host,
            port=port,
            ready_check=self._ready_check,
            stream_heartbeat=stream_heartbeat,
        )
        self._threads: List[threading.Thread] = []
        self._run_log = runlog.RunLog(run_log) if run_log else None

    # -- readiness -----------------------------------------------------

    def _ready_check(self) -> Tuple[bool, str]:
        alive = sum(1 for t in self._threads if t.is_alive())
        expected = len(self.workers) + 1  # + reaper
        degraded_evals = profiling.counter("parallel.degraded")
        if self._threads and alive < expected:
            return (
                False,
                f"{expected - alive} of {expected} scheduler threads dead",
            )
        if degraded_evals:
            return (
                True,
                f"evaluation pool degraded {degraded_evals}x (serial "
                f"fallback active)",
            )
        return True, f"{len(self.workers)} workers + reaper alive"

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        """The API's bound port."""
        return self.api.port

    def start(self) -> None:
        """Start workers, reaper, and the HTTP listener."""
        previous = runlog.set_run_log(self._run_log) if self._run_log else None
        del previous  # service owns the log for its whole lifetime
        for worker in self.workers:
            thread = threading.Thread(
                target=worker.run_forever,
                args=(self._stop.is_set,),
                name=worker.worker_id,
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        reaper_thread = threading.Thread(
            target=self.reaper.run_forever,
            args=(self._stop.is_set,),
            kwargs={"interval": min(self.store.lease_ttl / 2.0, 1.0)},
            name=self.reaper.reaper_id,
            daemon=True,
        )
        reaper_thread.start()
        self._threads.append(reaper_thread)
        self.api.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Drain gracefully: checkpoint in-flight work, then shut down."""
        self.api.draining.set()
        runlog.emit_event("server.drain", jobs=self.store.queue_depth())
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self.api.shutdown()
        if self._run_log is not None:
            runlog.set_run_log(None)

    def serve_until(self, stop_check, poll_interval: float = 0.2) -> None:
        """Block until ``stop_check`` returns true, then :meth:`stop`.

        The ``repro serve`` handler runs this under a
        :class:`~repro.cli.RunSupervisor`, so SIGTERM/SIGINT trigger the
        graceful drain.
        """
        self.start()
        try:
            while not stop_check():
                time.sleep(poll_interval)
        finally:
            self.stop()
