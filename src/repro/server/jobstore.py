"""The durable job store: one directory per job, everything crash-safe.

Layout under the store root::

    jobs/
      j<ts>-<id>/
        record.json     # queue state (records.py header+CRC format)
        lease.json      # present while a worker owns the job (leases.py)
        checkpoint/     # the job's portfolio checkpoint dir (resume here)
        result.json     # written once, atomically, on completion
        events.jsonl    # per-job lifecycle event log (append-only)

The store is the only component that touches this layout; workers, the
reaper, and the HTTP API all go through it.  Every record write is atomic
(:func:`repro.server.records.write_record`), so a crash at any instant
leaves each job either absent or fully valid -- a half-submitted job cannot
exist.  Corrupt records (injected torn writes, disk faults) are surfaced
explicitly by :meth:`JobStore.scan` instead of being silently skipped.

Per-tenant admission control lives here too: a tenant may hold at most
``tenant_cap`` non-terminal jobs; past that, :meth:`submit` raises
:class:`~repro.errors.JobQueueFullError` (the API maps it to 429 with a
``Retry-After``).  The in-process lock makes the cap exact for one server
process -- the deployment model of the simulation-mode service.

``repro-lint-scope: determinism-boundary`` -- the store stamps wall-clock
queue times; the work each job runs stays seeded by its spec.
"""

from __future__ import annotations

import json
import re
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .. import profiling
from ..checkpoint.atomic import append_jsonl, atomic_write_json
from ..errors import (
    JobNotFoundError,
    JobQueueFullError,
    JobRecordError,
    JobStateError,
)
from ..telemetry.promexpo import gauge
from ..telemetry.runlog import read_run_log
from .leases import LeaseFile
from .records import (
    JobRecord,
    STATE_COMPLETED,
    STATE_PENDING,
    TERMINAL_STATES,
    new_job_id,
    read_record,
    write_record,
)

__all__ = ["JobStore"]

#: File names inside one job directory.
RECORD_FILENAME = "record.json"
RESULT_FILENAME = "result.json"
EVENTS_FILENAME = "events.jsonl"
TRACE_FILENAME = "trace.json"
CHECKPOINT_DIRNAME = "checkpoint"

#: The shape :func:`repro.server.records.new_job_id` produces.  Job ids
#: arrive from the network as URL path segments; anything else -- ``..``,
#: separators, absolute paths -- must never reach a filesystem join.
_JOB_ID_RE = re.compile(r"j[0-9a-f]{16,}-[0-9a-f]{10}")


class JobStore:
    """Filesystem-backed durable job queue.

    Args:
        root: Store root directory (created on first use).
        tenant_cap: Max non-terminal jobs one tenant may hold; exceeding
            submissions are rejected with
            :class:`~repro.errors.JobQueueFullError`.
        lease_ttl: TTL handed to every job's :class:`LeaseFile` [unit: s].
    """

    def __init__(
        self,
        root: Union[str, Path],
        tenant_cap: int = 8,
        lease_ttl: float = 30.0,
    ):
        if tenant_cap < 1:
            raise JobStateError(f"tenant_cap must be >= 1, got {tenant_cap}")
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.tenant_cap = int(tenant_cap)
        self.lease_ttl = float(lease_ttl)
        self._submit_lock = threading.Lock()

    # -- paths ---------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        """The directory of job ``job_id`` (not required to exist).

        Raises:
            JobNotFoundError: ``job_id`` does not have the shape
                :func:`~repro.server.records.new_job_id` mints.  Ids come
                off the wire as path segments; a malformed one (``..``,
                separators) can never name a job and must never be joined
                onto the store root.
        """
        if not _JOB_ID_RE.fullmatch(job_id):
            raise JobNotFoundError(f"no job {job_id!r}")
        return self.jobs_dir / job_id

    def record_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / RECORD_FILENAME

    def result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / RESULT_FILENAME

    def events_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / EVENTS_FILENAME

    def trace_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / TRACE_FILENAME

    def checkpoint_dir(self, job_id: str) -> Path:
        """The job's portfolio checkpoint dir (crash-resume state)."""
        return self.job_dir(job_id) / CHECKPOINT_DIRNAME

    def lease(self, job_id: str) -> LeaseFile:
        """The lease file guarding job ``job_id``."""
        return LeaseFile(self.job_dir(job_id), ttl=self.lease_ttl)

    # -- admission -----------------------------------------------------

    def submit(self, spec: Dict[str, Any], tenant: str = "default") -> JobRecord:
        """Admit a validated spec as a new pending job.

        Raises:
            JobQueueFullError: ``tenant`` already holds ``tenant_cap``
                non-terminal jobs.
        """
        with self._submit_lock:
            active = self.active_count(tenant)
            if active >= self.tenant_cap:
                raise JobQueueFullError(
                    f"tenant {tenant!r} has {active} active jobs "
                    f"(cap {self.tenant_cap}); retry after one completes",
                    retry_after=max(self.lease_ttl / 2.0, 1.0),
                )
            now = time.time()
            record = JobRecord(
                job_id=new_job_id(),
                tenant=tenant,
                state=STATE_PENDING,
                spec=dict(spec),
                attempts=0,
                max_attempts=int(spec.get("max_attempts", 3)),
                submitted_at=now,
                updated_at=now,
                trace_id=uuid.uuid4().hex,
            )
            directory = self.job_dir(record.job_id)
            directory.mkdir(parents=True, exist_ok=False)
            write_record(self.record_path(record.job_id), record)
        self.log_event(record.job_id, "job.submitted", tenant=tenant)
        profiling.increment("server.jobs_submitted")
        return record

    # -- reading -------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        """The current record of ``job_id``.

        Raises:
            JobNotFoundError: No such job directory or record file.
            JobRecordError: The record exists but fails validation.
        """
        path = self.record_path(job_id)
        if not path.exists():
            raise JobNotFoundError(f"no job {job_id!r}")
        return read_record(path)

    def scan(self) -> Tuple[List[JobRecord], List[str]]:
        """Every job in the store: ``(valid_records, invalid_job_ids)``.

        Valid records come back sorted by ``(submitted_at, job_id)``.
        Invalid ids name directories whose record is missing or fails
        validation (a crash between ``mkdir`` and the first record write,
        or injected corruption) -- surfaced, never silently dropped.
        """
        records: List[JobRecord] = []
        invalid: List[str] = []
        if not self.jobs_dir.exists():
            return records, invalid
        for entry in sorted(self.jobs_dir.iterdir()):
            if not entry.is_dir():
                continue
            try:
                records.append(read_record(entry / RECORD_FILENAME))
            except (JobNotFoundError, JobRecordError, OSError):
                invalid.append(entry.name)
        records.sort(key=lambda r: (r.submitted_at, r.job_id))
        return records, invalid

    def list_jobs(self) -> List[JobRecord]:
        """All valid records, oldest submission first."""
        return self.scan()[0]

    def claimable(self, now: Optional[float] = None) -> List[JobRecord]:
        """Pending jobs eligible to run (``not_before`` elapsed), FIFO."""
        now = time.time() if now is None else now
        return [
            record
            for record in self.list_jobs()
            if record.state == STATE_PENDING and record.not_before <= now
        ]

    def active_count(self, tenant: str) -> int:
        """Non-terminal jobs currently held by ``tenant``."""
        return sum(
            1
            for record in self.list_jobs()
            if record.tenant == tenant
            and record.state not in TERMINAL_STATES
        )

    def queue_depth(self) -> Dict[str, int]:
        """Job count per state (plus ``"invalid"``) -- readiness input."""
        records, invalid = self.scan()
        depth: Dict[str, int] = {"invalid": len(invalid)}
        for record in records:
            depth[record.state] = depth.get(record.state, 0) + 1
        return depth

    # -- writing -------------------------------------------------------

    def update(self, record: JobRecord) -> JobRecord:
        """Atomically persist ``record`` over the previous version.

        Raises:
            JobNotFoundError: The job was never submitted here.
        """
        if not self.job_dir(record.job_id).is_dir():
            raise JobNotFoundError(f"no job {record.job_id!r}")
        write_record(self.record_path(record.job_id), record)
        return record

    def write_result(self, job_id: str, result: Dict[str, Any]) -> Path:
        """Atomically persist the completed job's result payload."""
        return atomic_write_json(self.result_path(job_id), result)

    def read_result(self, job_id: str) -> Dict[str, Any]:
        """The result payload of a completed job.

        Raises:
            JobNotFoundError: No such job.
            JobStateError: The job exists but has not completed.
        """
        record = self.get(job_id)
        path = self.result_path(job_id)
        if record.state != STATE_COMPLETED or not path.exists():
            raise JobStateError(
                f"job {job_id} is {record.state}, not completed; "
                f"no result available"
            )
        return json.loads(path.read_text("utf-8"))

    # -- per-job trace export ------------------------------------------

    def write_trace(self, job_id: str, trace: Dict[str, Any]) -> Path:
        """Atomically persist the job's Chrome trace-event export."""
        return atomic_write_json(self.trace_path(job_id), trace)

    def read_trace(self, job_id: str) -> Dict[str, Any]:
        """The job's stitched Chrome trace export.

        Raises:
            JobNotFoundError: No such job.
            JobStateError: The job exists but no trace was exported (the
                service ran without ``--trace-jobs``, or the job has not
                finished an attempt yet).
        """
        self.get(job_id)  # surfaces JobNotFoundError / JobRecordError
        path = self.trace_path(job_id)
        if not path.exists():
            raise JobStateError(
                f"job {job_id} has no trace export; run the service with "
                f"job tracing enabled and let the job complete an attempt"
            )
        return json.loads(path.read_text("utf-8"))

    # -- gauges ---------------------------------------------------------

    def collect_gauges(self, now: Optional[float] = None) -> List[dict]:
        """Point-in-time gauge samples for ``/metrics`` and ``/readyz``.

        One scan of the store yields queue depth by state, the age of the
        oldest pending job, per-tenant active-job counts, and lease health
        (active/expired counts plus per-worker heartbeat age, where the
        heartbeat time is recovered as ``expires_at - ttl``, the instant
        of the last successful acquire/renew).
        """
        now = time.time() if now is None else now
        records, invalid = self.scan()
        depth: Dict[str, int] = {}
        tenants: Dict[str, int] = {}
        oldest_pending: Optional[float] = None
        for record in records:
            depth[record.state] = depth.get(record.state, 0) + 1
            if record.state not in TERMINAL_STATES:
                tenants[record.tenant] = tenants.get(record.tenant, 0) + 1
            if record.state == STATE_PENDING:
                if oldest_pending is None or record.submitted_at < oldest_pending:
                    oldest_pending = record.submitted_at
        samples = [
            gauge("server.queue_depth", count, state=state)
            for state, count in sorted(depth.items())
        ]
        samples.append(
            gauge("server.queue_depth", len(invalid), state="invalid")
        )
        samples.append(
            gauge(
                "server.oldest_pending_age_s",
                0.0 if oldest_pending is None else max(now - oldest_pending, 0.0),
            )
        )
        samples.extend(
            gauge("server.tenant_active_jobs", count, tenant=tenant)
            for tenant, count in sorted(tenants.items())
        )
        active = expired = 0
        for record in records:
            lease_file = self.lease(record.job_id)
            lease = lease_file.read()
            if lease is None:
                continue
            if now >= lease.expires_at:
                expired += 1
            else:
                active += 1
                samples.append(
                    gauge(
                        "server.worker_heartbeat_age_s",
                        max(now - (lease.expires_at - lease_file.ttl), 0.0),
                        worker=lease.owner,
                    )
                )
        samples.append(gauge("server.active_leases", active))
        samples.append(gauge("server.expired_leases", expired))
        return samples

    # -- per-job event log ---------------------------------------------

    def log_event(self, job_id: str, event_type: str, **fields: Any) -> None:
        """Append one lifecycle event to the job's durable event log."""
        record = {"type": event_type, "t_wall": time.time(), **fields}
        append_jsonl(self.events_path(job_id), record, fsync=False)

    def events(
        self, job_id: str, offset: int = 0, limit: Optional[int] = None
    ) -> List[dict]:
        """The job's lifecycle events from ``offset`` on (may be empty).

        Args:
            offset: Events to skip from the start of the log.
            limit: Cap on returned events (``None`` means all).

        Raises:
            JobNotFoundError: No such job.
        """
        if not self.job_dir(job_id).is_dir():
            raise JobNotFoundError(f"no job {job_id!r}")
        path = self.events_path(job_id)
        if not path.exists():
            return []
        events = read_run_log(path)[offset:]
        return events if limit is None else events[:limit]
