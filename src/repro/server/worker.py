"""Workers and the reaper: lease-based scheduling with crash recovery.

A :class:`Worker` loops over the store's claimable jobs, acquires each
job's lease (``O_EXCL`` -- exactly one claimer wins), and executes the
spec through its :class:`~repro.server.executor.Executor`.  A heartbeat
thread renews the lease at ``ttl / 3``; losing the lease (the reaper
reclaimed it, so the rest of the system already presumes this worker dead)
flips the executor's ``interrupt_check``, stopping the run at the next
round boundary without committing anything.

The :class:`Reaper` is the recovery half: any *running* job whose lease
has expired belongs to a worker that stopped heartbeating -- SIGKILL, OOM,
power loss.  The reaper steals the expired lease (rename protocol, at most
one winner), charges the crash as one attempt, and requeues the job; the
next worker's executor resumes from the job's checkpoint directory and
finishes with a bitwise-identical result.  A job that crashed
``max_attempts`` times is poison and is quarantined instead of looping
forever.  The reaper also finishes half-committed completions: a result
file written by a worker that died before flipping its record to
``completed`` is committed, not re-run.  And it unwedges *pending* jobs
left behind an expired lease by a claimer that died before the record
flip -- cleared without charging an attempt, since no work started.

Failure discipline (R4): the executor call is wrapped in
:func:`~repro.errors.crash_boundary`; everything reaching the retry logic
is a typed ``ReproError`` or ``CandidateCrashError``.

``repro-lint-scope: determinism-boundary`` -- scheduling is wall-clock
(leases, backoff); the work itself stays seeded by the job spec.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Any, Callable, Dict, List, Optional

from .. import profiling, telemetry
from ..errors import (
    CandidateCrashError,
    JobNotFoundError,
    JobRecordError,
    LeaseError,
    LeaseLostError,
    ReproError,
    RunInterrupted,
    crash_boundary,
)
from ..faults import SITE_SERVER_WORKER, inject
from ..optimize.portfolio import PORTFOLIO_CHECKPOINT
from ..telemetry import TelemetryConfig
from .executor import Executor, SimulationExecutor
from .jobstore import JobStore
from .records import (
    JobRecord,
    STATE_COMPLETED,
    STATE_PENDING,
    STATE_QUARANTINED,
    STATE_RUNNING,
)

__all__ = ["Reaper", "Worker"]

#: First retry delay [unit: s]; doubles per attempt (exponential backoff).
RETRY_BACKOFF_BASE = 2.0

#: Idle sleep between claim scans [unit: s].
POLL_INTERVAL = 0.2

#: The global tracer is process-wide state, so at most one job per process
#: is traced at a time; workers that lose this lock run their job untraced
#: rather than interleaving two jobs' spans into one export.
_TRACE_LOCK = threading.Lock()


def _worker_id(prefix: str) -> str:
    return f"{prefix}-{uuid.uuid4().hex[:8]}"


def _backoff(attempts: int, base: float) -> float:
    """Retry delay after ``attempts`` failures [unit: s]."""
    return base * (2.0 ** max(attempts - 1, 0))


class _Heartbeat:
    """Background lease renewal; flags the owner when the lease is lost."""

    def __init__(self, lease_file, lease, interval: float):
        self._lease_file = lease_file
        self.lease = lease
        self._interval = interval
        self._stop = threading.Event()
        self._lost = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=self._interval * 4 + 1.0)

    @property
    def lost(self) -> bool:
        """True once a renewal found the lease stolen or unrenewable."""
        return self._lost.is_set()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self.lease = self._lease_file.renew(self.lease)
            except (LeaseLostError, LeaseError):
                # Renewal failure (injected or real) means the lease will
                # expire and the reaper will requeue the job: this worker
                # must stand down, not race the next owner.
                self._lost.set()
                return


class Worker:
    """One job-executing worker bound to a store.

    Args:
        store: The durable queue.
        executor: Execution backend; defaults to in-process simulation.
        worker_id: Stable identity in leases/records (generated if absent).
        retry_backoff: Base retry delay [unit: s].
        trace_jobs: Arm span tracing per claimed job (the record's
            ``trace_id`` stitches API/worker/pool rows) and export the
            stitched Chrome trace next to the job's result.
    """

    def __init__(
        self,
        store: JobStore,
        executor: Optional[Executor] = None,
        worker_id: Optional[str] = None,
        retry_backoff: float = RETRY_BACKOFF_BASE,
        trace_jobs: bool = False,
    ):
        self.store = store
        self.executor = executor or SimulationExecutor()
        self.worker_id = worker_id or _worker_id("worker")
        self.retry_backoff = float(retry_backoff)
        self.trace_jobs = bool(trace_jobs)

    # -- claim loop ----------------------------------------------------

    def run_forever(
        self,
        stop_check: Callable[[], bool],
        poll_interval: float = POLL_INTERVAL,
    ) -> None:
        """Claim and execute jobs until ``stop_check`` returns true."""
        while not stop_check():
            if self.claim_once(stop_check) is None:
                time.sleep(poll_interval)

    def claim_once(
        self, stop_check: Optional[Callable[[], bool]] = None
    ) -> Optional[str]:
        """Claim and fully process one eligible job; its id, or ``None``.

        ``None`` means the queue held nothing this worker could claim --
        empty, all backoff-gated, or every race lost.
        """
        for candidate in self.store.claimable():
            lease_file = self.store.lease(candidate.job_id)
            lease = lease_file.try_acquire(self.worker_id)
            if lease is None:
                continue  # lost the race; try the next job
            try:
                try:
                    record = self.store.get(candidate.job_id)
                except (JobNotFoundError, JobRecordError):
                    continue
                if (
                    record.state != STATE_PENDING
                    or record.not_before > time.time()
                ):
                    # The queue moved between scan and acquire (another
                    # worker finished it, the reaper requeued it with
                    # backoff, ...).
                    continue
                self._run_job(record, lease_file, lease, stop_check)
                return record.job_id
            finally:
                # Idempotent (token-guarded): the paths inside _run_job
                # have already released or deliberately ceded the lease.
                # This catches every other exit -- an unexpected exception
                # between acquisition and the heartbeat start would
                # otherwise strand a pending job behind an orphaned lease.
                lease_file.release(lease)
        return None

    # -- execution -----------------------------------------------------

    def _run_job(
        self,
        record: JobRecord,
        lease_file,
        lease,
        stop_check: Optional[Callable[[], bool]],
    ) -> None:
        store = self.store
        job_id = record.job_id
        started = time.perf_counter()
        # Lane is thread state; restore the caller's on every exit so a
        # direct claim_once() on a borrowed thread leaves no residue.
        prior_lane = telemetry.current_lane()
        telemetry.set_thread_lane(self.worker_id)
        tracing = self._arm_tracing(record)
        try:
            resumed = (
                store.checkpoint_dir(job_id) / PORTFOLIO_CHECKPOINT
            ).exists()
            record = store.update(
                record.with_state(STATE_RUNNING, worker=self.worker_id)
            )
            store.log_event(
                job_id,
                "job.resumed" if resumed else "job.claimed",
                worker=self.worker_id,
                attempt=record.attempts + 1,
            )
            heartbeat = _Heartbeat(lease_file, lease, store.lease_ttl / 3.0)
            heartbeat.start()

            def interrupted() -> bool:
                if heartbeat.lost:
                    return True
                return bool(stop_check and stop_check())

            def progress(event_type: str, fields: Dict[str, Any]) -> None:
                # Live per-round events for follow=1 streams; the durable
                # result is what matters, so a full event disk is not a
                # reason to fail the job.
                try:
                    store.log_event(job_id, event_type, **fields)
                except OSError:
                    pass

            try:
                try:
                    with crash_boundary(f"job {job_id}"):
                        inject(SITE_SERVER_WORKER)  # chaos: die/raise mid-job
                        with telemetry.span(
                            "server.job",
                            job_id=job_id,
                            worker=self.worker_id,
                            attempt=record.attempts + 1,
                        ):
                            result = self.executor.execute(
                                record.spec,
                                str(store.checkpoint_dir(job_id)),
                                interrupt_check=interrupted,
                                progress=progress,
                            )
                finally:
                    # Export before any commit/requeue flips the record:
                    # a follow=1 client sees the terminal event and GETs
                    # /trace immediately -- the file must already exist.
                    if tracing:
                        self._finish_tracing(record)
                        tracing = False
            except RunInterrupted:
                heartbeat.stop()
                if heartbeat.lost:
                    return  # the reaper owns recovery now; touch nothing
                self._requeue_drained(record, lease_file, heartbeat.lease)
                return
            except LeaseLostError:
                heartbeat.stop()
                return
            except (ReproError, CandidateCrashError) as exc:
                heartbeat.stop()
                if not heartbeat.lost:
                    self._record_failure(
                        record, lease_file, heartbeat.lease, exc
                    )
                return
            heartbeat.stop()
            if heartbeat.lost:
                return
            self._commit(record, lease_file, heartbeat.lease, result, started)
        finally:
            if tracing:
                self._finish_tracing(record)
            telemetry.set_thread_lane(prior_lane)

    # -- per-job tracing -----------------------------------------------

    def _arm_tracing(self, record: JobRecord) -> bool:
        """Arm the global tracer for this job; ``True`` when armed."""
        if not self.trace_jobs or record.trace_id is None:
            return False
        if not _TRACE_LOCK.acquire(blocking=False):
            return False  # another job is being traced in this process
        telemetry.clear_spans()
        TelemetryConfig(trace=True, trace_id=record.trace_id).apply()
        return True

    def _finish_tracing(self, record: JobRecord) -> None:
        """Export the stitched trace and disarm (pairs with _arm_tracing)."""
        try:
            self.store.write_trace(
                record.job_id, telemetry.to_chrome_trace()
            )
        except (ReproError, OSError):
            pass  # the trace export is best-effort diagnostics
        finally:
            TelemetryConfig().apply()
            telemetry.clear_spans()
            _TRACE_LOCK.release()

    def _commit(self, record, lease_file, lease, result, started) -> None:
        """Persist result then record -- in that order (see Reaper)."""
        store = self.store
        store.write_result(record.job_id, result)
        try:
            lease_file.verify(lease)
        except LeaseLostError:
            return  # stale result file is harmless; the new owner rewrites
        store.update(record.with_state(STATE_COMPLETED, error=None))
        store.log_event(
            record.job_id,
            "job.completed",
            worker=self.worker_id,
            score=result.get("score"),
        )
        profiling.increment("server.jobs_completed")
        profiling.observe(
            "server.job_duration", time.perf_counter() - started
        )
        lease_file.release(lease)

    def _requeue_drained(self, record, lease_file, lease) -> None:
        """Graceful interrupt: back to pending, attempt NOT charged."""
        store = self.store
        try:
            lease_file.verify(lease)
        except LeaseLostError:
            return
        # Event before record flip: a drain-time follower closes its
        # stream the moment the record leaves ``running``, so the final
        # ``job.interrupted`` line must already be on disk by then.
        store.log_event(
            record.job_id, "job.interrupted", worker=self.worker_id
        )
        store.update(record.with_state(STATE_PENDING, worker=None))
        lease_file.release(lease)

    def _record_failure(self, record, lease_file, lease, exc) -> None:
        store = self.store
        try:
            lease_file.verify(lease)
        except LeaseLostError:
            return
        attempts = record.attempts + 1
        message = f"{type(exc).__name__}: {exc}"
        if attempts >= record.max_attempts:
            store.update(
                record.with_state(
                    STATE_QUARANTINED, attempts=attempts, error=message
                )
            )
            store.log_event(
                record.job_id,
                "job.quarantined",
                worker=self.worker_id,
                attempts=attempts,
                error=message,
            )
            profiling.increment("server.jobs_quarantined")
        else:
            store.update(
                record.with_state(
                    STATE_PENDING,
                    attempts=attempts,
                    error=message,
                    worker=None,
                    not_before=time.time()
                    + _backoff(attempts, self.retry_backoff),
                )
            )
            store.log_event(
                record.job_id,
                "job.failed",
                worker=self.worker_id,
                attempts=attempts,
                error=message,
            )
            profiling.increment("server.jobs_failed")
        lease_file.release(lease)


class Reaper:
    """Reclaims jobs whose workers stopped heartbeating.

    Args:
        store: The durable queue.
        reaper_id: Identity used when stealing leases.
        retry_backoff: Base requeue delay [unit: s].
    """

    def __init__(
        self,
        store: JobStore,
        reaper_id: Optional[str] = None,
        retry_backoff: float = RETRY_BACKOFF_BASE,
    ):
        self.store = store
        self.reaper_id = reaper_id or _worker_id("reaper")
        self.retry_backoff = float(retry_backoff)

    def run_forever(
        self,
        stop_check: Callable[[], bool],
        interval: Optional[float] = None,
    ) -> None:
        """Sweep until ``stop_check`` returns true."""
        interval = (
            self.store.lease_ttl / 2.0 if interval is None else interval
        )
        while not stop_check():
            self.sweep()
            time.sleep(interval)

    def sweep(self) -> List[str]:
        """One recovery pass over the store; returns the reclaimed job ids.

        Two shapes of orphan are handled: a *running* job whose lease
        expired (the worker stopped heartbeating mid-job) is requeued with
        the crash charged as one attempt, and a *pending* job wedged
        behind an expired lease (the claimer died between lease
        acquisition and the record flip to running) has the orphaned
        lease cleared with no attempt charged -- the work never started.
        """
        reclaimed: List[str] = []
        for record in self.store.list_jobs():
            if record.state == STATE_RUNNING:
                if self._reclaim(record):
                    reclaimed.append(record.job_id)
            elif record.state == STATE_PENDING:
                if self._clear_orphaned_lease(record):
                    reclaimed.append(record.job_id)
        return reclaimed

    def _clear_orphaned_lease(self, record: JobRecord) -> bool:
        """Unwedge a pending job whose claimer died holding the lease.

        ``try_acquire`` refuses existing leases even when expired (expiry
        is reclaimed explicitly, never stolen implicitly on claim), so a
        worker SIGKILLed inside the claim window -- lease on disk, record
        still ``pending`` -- would block the job forever without this
        sweep.  Clearing is free: no attempt is charged because no work
        started, and the job becomes claimable again immediately.
        """
        store = self.store
        lease_file = store.lease(record.job_id)
        current = lease_file.read()
        if current is None or not current.expired:
            return False  # unleased (normal pending) or a live claimer
        lease = lease_file.steal_expired(self.reaper_id)
        if lease is None:
            return False  # a racing reaper won, or the view went stale
        try:
            fresh = store.get(record.job_id)
        except (JobNotFoundError, JobRecordError):
            lease_file.release(lease)
            return False
        if fresh.state != STATE_PENDING:
            # The claimer was alive after all and flipped the record; it
            # will lose its lease at the next heartbeat and the running
            # sweep owns recovery from there.
            lease_file.release(lease)
            return False
        store.log_event(
            record.job_id,
            "job.orphaned_lease_cleared",
            reaper=self.reaper_id,
            dead_claimer=current.owner,
        )
        profiling.increment("server.orphaned_leases_cleared")
        lease_file.release(lease)
        return True

    def _reclaim(self, record: JobRecord) -> bool:
        store = self.store
        lease_file = store.lease(record.job_id)
        current = lease_file.read()
        if current is not None and not current.expired:
            return False  # the worker is alive and heartbeating
        if current is None:
            # Running record with no lease at all: the owner died in the
            # narrow window around release.  Claim it directly.
            lease = lease_file.try_acquire(self.reaper_id)
        else:
            lease = lease_file.steal_expired(self.reaper_id)
        if lease is None:
            return False  # a racing reaper (or revived worker) won
        try:
            record = store.get(record.job_id)
        except (JobNotFoundError, JobRecordError):
            lease_file.release(lease)
            return False
        if record.state != STATE_RUNNING:
            lease_file.release(lease)
            return False
        if store.result_path(record.job_id).exists():
            # The worker finished the work and died before the final
            # record write: commit, don't re-run.
            store.update(record.with_state(STATE_COMPLETED, error=None))
            store.log_event(
                record.job_id, "job.completed", worker=self.reaper_id
            )
            profiling.increment("server.jobs_completed")
            lease_file.release(lease)
            return True
        attempts = record.attempts + 1
        dead = record.worker or "<unknown>"
        if attempts >= record.max_attempts:
            store.update(
                record.with_state(
                    STATE_QUARANTINED,
                    attempts=attempts,
                    error=f"worker {dead} lost its lease mid-job "
                    f"(crash presumed), attempt {attempts}",
                )
            )
            store.log_event(
                record.job_id,
                "job.quarantined",
                reaper=self.reaper_id,
                dead_worker=dead,
                attempts=attempts,
            )
            profiling.increment("server.jobs_quarantined")
        else:
            store.update(
                record.with_state(
                    STATE_PENDING,
                    attempts=attempts,
                    worker=None,
                    error=f"reclaimed from {dead} (lease expired)",
                    not_before=time.time()
                    + _backoff(attempts, self.retry_backoff),
                )
            )
            store.log_event(
                record.job_id,
                "job.lease_reclaimed",
                reaper=self.reaper_id,
                dead_worker=dead,
                attempts=attempts,
            )
        lease_file.release(lease)
        return True
