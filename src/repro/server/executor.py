"""Job execution: spec -> deterministic portfolio run -> JSON result.

The service's execution seam.  :class:`Executor` is the interface a
scheduler dispatches through; :class:`SimulationExecutor` is the only
implementation today -- it runs the portfolio **in-process** over the same
:func:`repro.optimize.portfolio.run_portfolio` entry point the CLI uses.
A future remote shard (one container per job) implements the same two
methods against a wire protocol; nothing in the worker or store changes.

Crash-safety contract: ``execute`` always points the portfolio at the
job's own checkpoint directory with ``resume=True``, so

* a fresh job starts clean (missing checkpoint starts fresh by design),
* a job reclaimed after a worker SIGKILL resumes from the last round
  boundary, and -- because portfolio resume is bitwise -- finishes with a
  result identical to an uninterrupted run,
* a gracefully drained job (``interrupt_check`` fired) leaves a checkpoint
  the next attempt continues from.

Everything in the result dict is plain JSON with full-precision floats
(``float`` round-trips exactly through ``json``), so the chaos suite can
assert bitwise equality across crash/resume runs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, Optional

import numpy as np

from ..cases import generate_case
from ..errors import JobValidationError
from ..iccad2015 import load_case
from ..iccad2015.cases import Case
from ..optimize.portfolio import (
    PROBLEM_PUMPING_POWER,
    PROBLEM_THERMAL_GRADIENT,
    PortfolioConfig,
    run_portfolio,
)

__all__ = ["Executor", "SimulationExecutor", "case_from_spec", "config_from_spec"]


def case_from_spec(spec: Dict[str, Any]) -> Case:
    """Rebuild the benchmark case a spec describes (deterministic).

    Specs carry either ``case`` (contest case number) or ``case_seed``
    (procedurally generated), plus an optional ``grid`` override --
    exactly the knobs :func:`repro.server.validation.validate_submission`
    admitted.  An inline ``power_maps`` override replaces the case's
    per-die maps; its shape must match the case it overrides
    (:class:`~repro.errors.JobValidationError` otherwise -- submission
    validation calls through here so the mismatch is a 400, not a
    quarantined job).
    """
    if spec.get("case_seed") is not None:
        case = generate_case(int(spec["case_seed"]), grid_size=spec.get("grid"))
    else:
        case = load_case(int(spec["case"]), grid_size=spec.get("grid") or 51)
    if spec.get("power_maps"):
        maps = [np.asarray(die, dtype=float) for die in spec["power_maps"]]
        if len(maps) != case.n_dies:
            raise JobValidationError(
                f"power_maps has {len(maps)} dies but the case stacks "
                f"{case.n_dies}",
                field="power_maps",
            )
        for die, die_map in enumerate(maps):
            if die_map.shape != (case.nrows, case.ncols):
                raise JobValidationError(
                    f"power_maps[{die}] is {die_map.shape[0]}x"
                    f"{die_map.shape[1]} but the case footprint is "
                    f"{case.nrows}x{case.ncols}",
                    field="power_maps",
                )
        case = replace(
            case,
            power_maps=maps,
            die_power=float(sum(die_map.sum() for die_map in maps)),
        )
    return case


def config_from_spec(spec: Dict[str, Any]) -> PortfolioConfig:
    """The portfolio schedule a spec pins down (part of the fingerprint)."""
    problem = (
        PROBLEM_PUMPING_POWER
        if int(spec.get("problem", 1)) == 1
        else PROBLEM_THERMAL_GRADIENT
    )
    return PortfolioConfig(
        problem=problem,
        rounds=int(spec["rounds"]),
        iterations=int(spec["iterations"]),
        batch_size=int(spec["batch_size"]),
        seed=int(spec["seed"]),
        n_workers=int(spec.get("n_workers") or 1),
    )


class Executor:
    """Where a claimed job's work actually happens (the shard seam)."""

    def execute(
        self,
        spec: Dict[str, Any],
        checkpoint_dir: str,
        interrupt_check: Optional[Callable[[], bool]] = None,
        progress: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Run ``spec`` to completion; returns the JSON result payload.

        Must be resumable: when ``checkpoint_dir`` holds state from an
        interrupted attempt, continue from it and produce a result
        bitwise-identical to an uninterrupted run.

        ``progress`` (when given) receives ``(event_type, fields)`` for
        the run's round/optimizer milestones -- the worker feeds it into
        the job's event log so ``follow=1`` streams see live progress.

        Raises:
            RunInterrupted: ``interrupt_check`` fired; the checkpoint in
                ``checkpoint_dir`` captures all completed work.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable executor identity (for /healthz)."""
        raise NotImplementedError


class SimulationExecutor(Executor):
    """In-process execution over the local portfolio (simulation mode)."""

    def execute(
        self,
        spec: Dict[str, Any],
        checkpoint_dir: str,
        interrupt_check: Optional[Callable[[], bool]] = None,
        progress: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        case = case_from_spec(spec)
        config = config_from_spec(spec)
        result = run_portfolio(
            case,
            tuple(spec["optimizers"]),
            config,
            checkpoint_dir=checkpoint_dir,
            resume=True,
            interrupt_check=interrupt_check,
            progress=progress,
        )
        best = result.best
        evaluation = best.evaluation
        return {
            "case_number": result.case_number,
            "problem": result.problem,
            "winner": best.name,
            "score": evaluation.score,
            "feasible": evaluation.feasible,
            "p_sys": evaluation.p_sys,
            "w_pump": evaluation.w_pump,
            "t_max": evaluation.t_max,
            "delta_t": evaluation.delta_t,
            "optimizers": {
                name: {
                    "score": outcome.score,
                    "feasible": outcome.evaluation.feasible,
                    "low_evals": outcome.low_evals,
                    "high_evals": outcome.high_evals,
                }
                for name, outcome in sorted(result.outcomes.items())
            },
        }

    def describe(self) -> str:
        return "simulation (in-process portfolio)"
