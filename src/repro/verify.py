"""Public verification utilities: check solutions against physical laws.

Downstream users extending the models (new conductance terms, new network
generators) can call these after any change; the same invariants back the
test suite:

* volume conservation and the discrete maximum principle for flow solutions;
* energy conservation (die power = coolant enthalpy rise) and near-minimum
  temperatures for thermal results;
* 2RM-vs-4RM agreement within a tolerance for a whole stack.

Each check returns a :class:`VerificationReport`; ``raise_if_failed()``
turns violations into exceptions for use in CI-style gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .errors import ReproError
from .flow.network import FlowSolution
from .thermal.result import ThermalResult


class VerificationError(ReproError):
    """A solution violates a physical invariant."""


@dataclass
class VerificationReport:
    """Outcome of one verification pass."""

    checks: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return not self.violations

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        """Log one check outcome."""
        self.checks.append(name)
        if not passed:
            self.violations.append(f"{name}: {detail}" if detail else name)

    def raise_if_failed(self) -> None:
        """Raise :class:`VerificationError` on any violation."""
        if self.violations:
            raise VerificationError(
                f"{len(self.violations)} invariant violation(s): "
                + "; ".join(self.violations)
            )

    def merged_with(self, other: "VerificationReport") -> "VerificationReport":
        """Concatenate two reports."""
        return VerificationReport(
            checks=self.checks + other.checks,
            violations=self.violations + other.violations,
        )


def verify_flow_solution(
    solution: FlowSolution, rtol: float = 1e-9
) -> VerificationReport:
    """Check a flow solution: conservation, pressure bounds, flow balance."""
    report = VerificationReport()
    scale = max(abs(solution.q_sys), 1e-30)

    residual = float(np.abs(solution.conservation_residual()).max())
    report.record(
        "volume conservation",
        residual <= rtol * scale,
        f"max residual {residual:.3e} m^3/s vs Q_sys {solution.q_sys:.3e}",
    )
    p_min = float(solution.pressures.min())
    p_max = float(solution.pressures.max())
    report.record(
        "discrete maximum principle",
        p_min >= -rtol * solution.p_sys and p_max <= solution.p_sys * (1 + rtol),
        f"pressures in [{p_min:.3g}, {p_max:.3g}] vs [0, {solution.p_sys:.3g}]",
    )
    inflow = float(solution.inlet_flows.sum())
    outflow = float(solution.outlet_flows.sum())
    report.record(
        "inflow equals outflow",
        abs(inflow - outflow) <= rtol * scale,
        f"in {inflow:.3e} vs out {outflow:.3e}",
    )
    report.record(
        "positive throughput", solution.q_sys > 0, f"Q_sys = {solution.q_sys}"
    )
    return report


def verify_thermal_result(
    result: ThermalResult,
    energy_rtol: float = 1e-6,
    undershoot_fraction: float = 0.02,
) -> VerificationReport:
    """Check a thermal result: energy balance and temperature bounds.

    ``undershoot_fraction`` bounds how far below the inlet temperature any
    node may sit, as a fraction of the total rise -- the central differencing
    scheme (Eq. 6) is not positivity-preserving, so a small undershoot is
    expected numerics rather than a bug.
    """
    report = VerificationReport()
    if result.coolant_heat_removed is not None and result.total_power > 0:
        error = result.energy_balance_error()
        report.record(
            "energy conservation",
            error <= energy_rtol,
            f"relative imbalance {error:.3e}",
        )
    rise = max(result.t_max - result.inlet_temperature, 0.0)
    floor = result.inlet_temperature - max(
        undershoot_fraction * rise, 1e-9
    )
    coldest = min(float(np.nanmin(f)) for f in result.layer_fields)
    report.record(
        "near-minimum principle",
        coldest >= floor,
        f"coldest node {coldest:.3f} K vs floor {floor:.3f} K",
    )
    finite = all(
        np.isfinite(f[~np.isnan(f)]).all() for f in result.layer_fields
    )
    report.record("finite temperatures", finite)
    if result.source_layer_indices:
        report.record(
            "peak in source layer",
            abs(result.t_max - result.t_max_source) < 1e-6,
            f"T_max {result.t_max:.3f} vs source peak "
            f"{result.t_max_source:.3f}",
        )
    return report


def verify_model_agreement(
    stack,
    coolant,
    pressures: Sequence[float],
    tile_size: int = 4,
    tolerance: float = 0.02,
    inlet_temperature: float = 300.0,
) -> VerificationReport:
    """Check that 2RM tracks 4RM on a stack across pressures.

    ``tolerance`` bounds the mean per-node relative error of source-layer
    temperatures (the paper's Fig. 9(a) metric).  Remember the documented
    counterflow limitation: dense serpentines legitimately exceed any such
    tolerance (see ``tests/thermal/test_model_limitations.py``).
    """
    from .analysis.model_compare import compare_models

    report = VerificationReport()
    records = compare_models(
        stack,
        coolant,
        [tile_size],
        pressures,
        inlet_temperature=inlet_temperature,
    )
    for record in records:
        report.record(
            f"2RM agreement @ {record.p_sys / 1e3:.1f} kPa",
            record.error_abs <= tolerance,
            f"mean relative error {record.error_abs:.3%} > {tolerance:.1%}",
        )
    return report
