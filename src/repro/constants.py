"""Physical constants and default model parameters.

All quantities are in SI units (m, kg, s, K, W, Pa) unless the name says
otherwise.  The values mirror the ICCAD 2015 contest / 3D-ICE conventions the
paper builds on: water coolant injected at 300 K into 100 um wide channels.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Geometry defaults (ICCAD 2015 contest benchmarks, Section 6 of the paper)
# ---------------------------------------------------------------------------

#: Width of a basic cell / microchannel, in meters (100 um).
CELL_WIDTH = 100e-6  #: [unit: m]

#: Die edge length of the contest benchmarks, in meters (10.1 mm).
CONTEST_DIE_SIZE = 10.1e-3  #: [unit: m]

#: Number of basic cells per side in the contest benchmarks (101 x 101).
CONTEST_GRID_SIZE = 101  #: [unit: 1]

#: Default channel heights used by the contest cases, in meters.
CHANNEL_HEIGHT_200UM = 200e-6  #: [unit: m]
CHANNEL_HEIGHT_400UM = 400e-6  #: [unit: m]

#: Default silicon bulk thickness per die, in meters.
DIE_BULK_THICKNESS = 50e-6  #: [unit: m]

#: Default active (source) layer thickness, in meters.
SOURCE_LAYER_THICKNESS = 2e-6  #: [unit: m]

# ---------------------------------------------------------------------------
# Coolant operating point
# ---------------------------------------------------------------------------

#: Coolant temperature at every inlet, in kelvin (Section 6: 300 K).
INLET_TEMPERATURE = 300.0  #: [unit: K]

#: Ambient temperature used by convective top boundaries, in kelvin.
AMBIENT_TEMPERATURE = 300.0  #: [unit: K]

# ---------------------------------------------------------------------------
# Laminar forced convection
# ---------------------------------------------------------------------------

#: Nusselt number for fully developed laminar flow in a rectangular duct with
#: four heated walls (Shah & London, 1978).  The exact value depends on the
#: aspect ratio; 4.86 corresponds to the aspect ratios of the contest channels
#: and is the constant 3D-ICE adopts.
NUSSELT_NUMBER = 4.86  #: [unit: 1]

#: Poiseuille shape constant in ``g = D_h^2 A_c / (C l mu)`` (Eq. 1).
POISEUILLE_CONSTANT = 32.0  #: [unit: 1]

#: Default scaling applied to the inlet/outlet edge conductance relative to a
#: full cell-to-cell conductance.  The paper only states the edge conductance
#: is "smaller"; 0.5 models the half-length path with an entrance-loss
#: penalty and is ablated in ``benchmarks/bench_ablation_edge_factor.py``.
EDGE_CONDUCTANCE_FACTOR = 0.5  #: [unit: 1]

# ---------------------------------------------------------------------------
# Numerical tolerances
# ---------------------------------------------------------------------------

#: Relative tolerance for volume / energy conservation checks.
CONSERVATION_RTOL = 1e-8  #: [unit: 1]

#: Default convergence tolerance of the pressure searches (Algorithm 3).
PRESSURE_SEARCH_RTOL = 1e-3  #: [unit: 1]

#: Initial pressure probed by Algorithm 3, in pascal.
PRESSURE_INIT = 10e3  #: [unit: Pa]

#: Initial step ratio of Algorithm 3 (``r_init``).
PRESSURE_INIT_STEP_RATIO = 0.25  #: [unit: 1]

#: Hard bounds on the system pressure drop considered physical, in pascal.
#: Integrated micropumps deliver on the order of tens of kPa (the paper's
#: operating points are 5-46 kPa); 200 kPa is a generous packaging limit.
PRESSURE_MIN = 1.0  #: [unit: Pa]
PRESSURE_MAX = 2e5  #: [unit: Pa]

# ---------------------------------------------------------------------------
# Parallel-pool resilience (repro.optimize.parallel)
# ---------------------------------------------------------------------------

#: Per-batch no-progress timeout of the persistent evaluation pool: if no
#: candidate completes for this long the batch is declared hung.  Generous --
#: a single 4RM candidate on a contest-size case stays well under a minute.
CANDIDATE_TIMEOUT = 600.0  #: [unit: s]

#: Batch retries (after the first attempt) before a pool failure propagates.
POOL_MAX_RETRIES = 2  #: [unit: 1]

#: First retry backoff; doubles per retry up to :data:`POOL_BACKOFF_MAX`.
POOL_BACKOFF_BASE = 0.05  #: [unit: s]

#: Ceiling on the exponential retry backoff.
POOL_BACKOFF_MAX = 2.0  #: [unit: s]

#: Consecutive failed batches after which a pool permanently degrades to
#: serial in-process evaluation (correctness over throughput).
POOL_DEGRADE_AFTER = 3  #: [unit: 1]

#: Default checkpoint cadence inside an SA round: one checkpoint per this
#: many SA iterations (round/stage/direction boundaries always checkpoint).
#: An iteration on a contest-size case costs seconds-to-minutes of solver
#: work, so a write every 10 iterations is noise next to the work it saves.
CHECKPOINT_EVERY_ITERATIONS = 10  #: [unit: 1]

#: Decimal places a pressure is rounded to before it keys a memoized result
#: (thermal-result caches, LU caches, search memoizers).  1e-6 Pa resolution
#: is ~1e-9 of the physical pressures above, far below PRESSURE_SEARCH_RTOL,
#: so quantization never changes a search decision -- it only lets re-probes
#: of epsilon-perturbed pressures hit the caches they logically should.
PRESSURE_KEY_DECIMALS = 6  #: [unit: 1]


def quantize_key(value: float, decimals: int = PRESSURE_KEY_DECIMALS) -> float:
    """Quantize a float before it keys a memoized result.

    Every cache in the repo that is keyed by a pressure (or any other float)
    must round through this helper so that epsilon-perturbed re-probes of the
    same operating point hit the cache instead of growing it.  The R2 lint
    rule (``repro.lint``) flags float-valued cache keys that bypass it.

    Args:
        value: The float to quantize, in whatever unit the caller keys
            by -- deliberately unit-polymorphic.  [unit: any]
        decimals: Rounding resolution.  [unit: 1]

    Returns:
        The rounded value, unchanged in unit.  [unit-return: any]
    """
    return round(float(value), decimals)
