"""Thermal simulation results and the paper's summary metrics.

The three quantities the problem formulations optimize or constrain
(Section 3):

* peak temperature ``T_max`` -- the maximum thermal-node temperature (it can
  only occur in a source layer, by energy conservation);
* thermal gradient ``DeltaT = max_i(DeltaT_i)`` where ``DeltaT_i`` is the
  range of node temperatures in the ``i``-th source layer;
* pumping power ``W_pump = P_sys Q_sys``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import ThermalError


@dataclass
class ThermalResult:
    """Steady-state temperatures of one simulation.

    Attributes:
        p_sys: System pressure drop, Pa.
        q_sys: System flow rate summed over all channel layers, m^3/s.
        w_pump: Pumping power ``P_sys * Q_sys``, W.
        layer_fields: One cell-resolution (nrows, ncols) temperature array
            per stack layer, bottom to top.  For 2RM results these are tile
            temperatures broadcast to cell resolution.
        layer_names: Stack layer names, aligned with ``layer_fields``.
        source_layer_indices: Indices into ``layer_fields`` of source layers.
        inlet_temperature: Coolant inlet temperature, K.
        liquid_fields: Coolant temperature per channel layer (NaN at solid
            cells), keyed by layer index.
        total_power: Heat injected by all source layers, W.
    """

    p_sys: float
    q_sys: float
    w_pump: float
    layer_fields: List[np.ndarray]
    layer_names: List[str]
    source_layer_indices: List[int]
    inlet_temperature: float
    total_power: float
    liquid_fields: Dict[int, np.ndarray] = field(default_factory=dict)
    #: Coolant enthalpy rise rate (W); equals total_power at a converged
    #: steady solution of an adiabatic stack.
    coolant_heat_removed: Optional[float] = None

    # ------------------------------------------------------------------

    @property
    def n_layers(self) -> int:
        """Number of stack layers in the result."""
        return len(self.layer_fields)

    def layer_field(self, layer: "int | str") -> np.ndarray:
        """Temperature field of one layer, by index or name."""
        if isinstance(layer, str):
            try:
                layer = self.layer_names.index(layer)
            except ValueError:
                raise ThermalError(
                    f"no layer named {layer!r}; have {self.layer_names}"
                ) from None
        return self.layer_fields[layer]

    def source_fields(self) -> List[np.ndarray]:
        """Temperature fields of the source layers, bottom to top."""
        return [self.layer_fields[i] for i in self.source_layer_indices]

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------

    @property
    def t_max(self) -> float:
        """Peak temperature over all thermal nodes, K."""
        return max(float(np.nanmax(f)) for f in self.layer_fields)

    @property
    def delta_t(self) -> float:
        """Thermal gradient: the largest per-source-layer temperature range."""
        ranges = self.delta_t_per_source_layer()
        if not ranges:
            raise ThermalError("stack has no source layers; DeltaT undefined")
        return max(ranges)

    def delta_t_per_source_layer(self) -> List[float]:
        """``DeltaT_i`` for each source layer, bottom to top."""
        out = []
        for f in self.source_fields():
            out.append(float(np.nanmax(f) - np.nanmin(f)))
        return out

    @property
    def t_max_source(self) -> float:
        """Peak temperature restricted to source layers, K."""
        fields = self.source_fields()
        if not fields:
            raise ThermalError("stack has no source layers")
        return max(float(np.nanmax(f)) for f in fields)

    def energy_balance_error(self) -> float:
        """|power in - heat carried out by coolant| / power in.

        Only available when the simulator recorded the coolant enthalpy rise.
        """
        if self.coolant_heat_removed is None:
            raise ThermalError("simulator did not record coolant heat removal")
        if self.total_power == 0:
            return abs(self.coolant_heat_removed)
        return abs(self.total_power - self.coolant_heat_removed) / self.total_power

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"P_sys={self.p_sys / 1e3:.2f} kPa  "
            f"W_pump={self.w_pump * 1e3:.2f} mW  "
            f"T_max={self.t_max:.2f} K  "
            f"DeltaT={self.delta_t:.2f} K"
        )
