"""Coarse tilings of the basic-cell grid for the 2RM model.

A :class:`Tiling` partitions the ``nrows x ncols`` basic-cell grid into
``tile_size x tile_size`` tiles (the "thermal cells" of Section 2.3; the last
row/column of tiles may be smaller when the grid size is not a multiple, as
with the contest's 101 x 101 grids).  It provides the aggregation and
expansion operators both the 2RM mesh builder and the model-comparison
analysis need.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ThermalError
from ..geometry.region import Rect


class Tiling:
    """A ragged-edge square tiling of a 2D cell grid."""

    def __init__(self, nrows: int, ncols: int, tile_size: int) -> None:
        if tile_size < 1:
            raise ThermalError(f"tile size must be >= 1, got {tile_size}")
        if nrows < 1 or ncols < 1:
            raise ThermalError(f"grid must be at least 1x1, got {nrows}x{ncols}")
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.tile_size = int(tile_size)
        self.row_starts = np.arange(0, nrows + tile_size, tile_size)
        self.row_starts[-1] = min(self.row_starts[-1], nrows)
        self.row_starts = np.unique(self.row_starts)
        self.col_starts = np.arange(0, ncols + tile_size, tile_size)
        self.col_starts[-1] = min(self.col_starts[-1], ncols)
        self.col_starts = np.unique(self.col_starts)
        self.n_tile_rows = len(self.row_starts) - 1
        self.n_tile_cols = len(self.col_starts) - 1
        #: Tile-row index of each cell row.
        self.row_of_cell = np.repeat(
            np.arange(self.n_tile_rows), np.diff(self.row_starts)
        )
        #: Tile-column index of each cell column.
        self.col_of_cell = np.repeat(
            np.arange(self.n_tile_cols), np.diff(self.col_starts)
        )

    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        """(tile rows, tile columns)."""
        return (self.n_tile_rows, self.n_tile_cols)

    @property
    def n_tiles(self) -> int:
        """Total tile count."""
        return self.n_tile_rows * self.n_tile_cols

    def tile_rect(self, tile_row: int, tile_col: int) -> Rect:
        """Cell rectangle covered by one tile."""
        return Rect(
            int(self.row_starts[tile_row]),
            int(self.col_starts[tile_col]),
            int(self.row_starts[tile_row + 1]),
            int(self.col_starts[tile_col + 1]),
        )

    def tile_height_cells(self, tile_row: int) -> int:
        """Cell rows inside one tile row."""
        return int(self.row_starts[tile_row + 1] - self.row_starts[tile_row])

    def tile_width_cells(self, tile_col: int) -> int:
        """Cell columns inside one tile column."""
        return int(self.col_starts[tile_col + 1] - self.col_starts[tile_col])

    def tile_heights(self) -> np.ndarray:
        """Cell counts of every tile row, shape (n_tile_rows,)."""
        return np.diff(self.row_starts)

    def tile_widths(self) -> np.ndarray:
        """Cell counts of every tile column, shape (n_tile_cols,)."""
        return np.diff(self.col_starts)

    # ------------------------------------------------------------------
    # Aggregation / expansion
    # ------------------------------------------------------------------

    def aggregate_sum(self, cell_values: np.ndarray) -> np.ndarray:
        """Sum a cell-resolution array over every tile."""
        arr = np.asarray(cell_values, dtype=float)
        if arr.shape != (self.nrows, self.ncols):
            raise ThermalError(
                f"array shape {arr.shape} does not match grid "
                f"({self.nrows}, {self.ncols})"
            )
        by_rows = np.add.reduceat(arr, self.row_starts[:-1], axis=0)
        return np.add.reduceat(by_rows, self.col_starts[:-1], axis=1)

    def aggregate_count(self, cell_mask: np.ndarray) -> np.ndarray:
        """Count True cells per tile (integer array)."""
        return self.aggregate_sum(cell_mask.astype(float)).astype(int)

    def aggregate_mean(
        self, cell_values: np.ndarray, where: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Per-tile mean, optionally over a cell mask; NaN for empty tiles."""
        if where is None:
            total = self.aggregate_sum(cell_values)
            count = self.aggregate_count(np.ones((self.nrows, self.ncols), bool))
        else:
            total = self.aggregate_sum(np.where(where, cell_values, 0.0))
            count = self.aggregate_count(where)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(count > 0, total / np.maximum(count, 1), np.nan)

    def expand(self, tile_values: np.ndarray) -> np.ndarray:
        """Broadcast a tile-resolution array back to cell resolution."""
        arr = np.asarray(tile_values)
        if arr.shape != self.shape:
            raise ThermalError(
                f"array shape {arr.shape} does not match tiling {self.shape}"
            )
        return arr[np.ix_(self.row_of_cell, self.col_of_cell)]
