"""Shared thermal-conductance formulas and the simulator base class.

The individual conductance expressions follow Section 2.2 of the paper:

* Eq. 4 -- solid-solid conduction ``g = k A / l``.
* Eq. 5 -- solid-liquid transfer: the convective wall conductance in series
  with the half-cell solid conduction, ``g_sl = (g_sl* g_ss*) / (g_sl* + g_ss*)``.
* Eq. 6 -- liquid-liquid advection under the central differencing scheme,
  ``q_ll = (C_v / 2) sum_j Q_ji T_j`` (plus the inlet/outlet closure terms).

Both simulators reduce to one sparse linear system ``(K + P_sys * A) T =
b0 + P_sys * b1``: ``K`` collects every conductance (pressure independent),
``A``/``b1`` collect the advection terms which scale linearly with ``P_sys``
because all local flow rates do.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csc_matrix

from .. import linalg, profiling, telemetry
from ..constants import NUSSELT_NUMBER, quantize_key
from ..errors import LinalgError, ThermalError
from ..faults import SITE_LINALG_UPDATE, corrupt
from ..flow.conductance import hydraulic_diameter
from ..materials import Coolant


def series_conductance(g_a: float, g_b: float) -> float:
    """Two thermal conductances in series (Eqs. 5 and 7).

    Returns 0 if either path is blocked (zero conductance).
    [unit-return: W/K]
    """
    if g_a <= 0 or g_b <= 0:
        return 0.0
    return g_a * g_b / (g_a + g_b)


def h_conv(
    coolant: Coolant,
    channel_width: float,
    channel_height: float,
    nusselt: float = NUSSELT_NUMBER,
) -> float:
    """Convective heat transfer coefficient ``h = Nu k_liquid / D_h``.
    [unit-return: W/(m^2 K)]
    """
    d_h = hydraulic_diameter(channel_width, channel_height)
    return nusselt * coolant.thermal_conductivity / d_h


def convective_conductance(
    area: float,
    coolant: Coolant,
    channel_width: float,
    channel_height: float,
    nusselt: float = NUSSELT_NUMBER,
) -> float:
    """Wall-to-coolant conductance ``g_sl* = h A`` (the Eq. 5 building block).
    [unit-return: W/K]
    """
    if area < 0:
        raise ThermalError(f"wall area must be non-negative, got {area}")
    return h_conv(coolant, channel_width, channel_height, nusselt) * area


def slab_half_conductance(k: float, area: float, thickness: float) -> float:
    """Conductance from a slab's center plane to its face, ``k A / (t/2)``.
    [unit-return: W/K]
    """
    if thickness <= 0:
        raise ThermalError(f"thickness must be positive, got {thickness}")
    return k * area / (0.5 * thickness)


@dataclass
class AdvectionSpec:
    """Advection terms of one channel layer at *unit* system pressure.

    Attributes:
        pair_nodes: (e, 2) global node ids of liquid entities exchanging
            coolant; flow is signed from column 0 to column 1.
        pair_flows: (e,) signed volumetric flow rates at ``P_sys = 1``.
        node_ids: (n,) global node ids of the layer's liquid entities.
        inlet_flows: (n,) inlet inflow per entity at ``P_sys = 1`` (>= 0).
        outlet_flows: (n,) outlet outflow per entity at ``P_sys = 1`` (>= 0).
    """

    pair_nodes: np.ndarray
    pair_flows: np.ndarray
    node_ids: np.ndarray
    inlet_flows: np.ndarray
    outlet_flows: np.ndarray


#: Advection discretization schemes for :func:`assemble_advection`.
ADVECTION_UPWIND = "upwind"
ADVECTION_CENTRAL = "central"

#: The default scheme.  Upwind is monotone (an M-matrix row pattern), so the
#: discrete maximum principle holds and liquid temperatures can never fall
#: below the inlet -- the central scheme of the paper's Eq. 6 is not, and
#: produces sub-inlet temperatures whenever a low-flow connector's cell
#: Peclet number exceeds 2 (ROADMAP item 6).
ADVECTION_SCHEME_DEFAULT = ADVECTION_UPWIND

ADVECTION_SCHEMES = (ADVECTION_UPWIND, ADVECTION_CENTRAL)


def assemble_advection(
    n_nodes: int,
    specs: "list[AdvectionSpec]",
    c_v: float,
    inlet_temperature: float,
    scheme: str = ADVECTION_SCHEME_DEFAULT,
) -> Tuple[csc_matrix, np.ndarray]:
    """Build the unit advection operator ``A`` and its RHS vector ``b1``.

    Two discretizations of the steady liquid-node energy balance are
    supported; both scale linearly with pressure (``P * A`` and ``P * b1``
    at pressure ``P``) because flow *signs* are pressure independent, which
    is what keeps the Woodbury pressure-shift path valid.

    ``scheme="central"`` is the paper's Eq. 6 (after the volume-conservation
    substitution)::

        A[i, j] = -C_v Q_ji / 2          for each liquid neighbor j
        A[i, i] = +C_v (Q_in,i + Q_out,i) / 2
        b1[i]   = +C_v Q_in,i * T_in

    It is second-order accurate but not monotone: a positive downstream
    off-diagonal appears whenever advective coupling exceeds the conduction
    anchoring a node (cell Peclet > 2), which can push liquid temperatures
    *below* the inlet on low-flow connectors.

    ``scheme="upwind"`` (the default) transports the *donor* node's
    temperature across each interface: for a pair ``(i, j)`` with signed
    flow ``q`` (positive i -> j), with donor ``d`` and receiver ``r``::

        A[d, d] += C_v |q|
        A[r, d] -= C_v |q|
        A[i, i] += C_v Q_out,i           per node
        b1[i]    = C_v Q_in,i * T_in     per node

    Every row then has a non-negative diagonal and non-positive
    off-diagonals summing to ``C_v Q_in,i`` (an M-matrix with ``K`` added),
    so the discrete maximum principle guarantees ``T >= T_in`` for
    heat-source-only steady states.  Both schemes conserve energy exactly:
    the column sums are ``C_v Q_out,j`` either way, so the coolant removes
    ``C_v P (sum_j Q_out,j T_j - Q_in_total T_in)``.
    """
    if scheme not in ADVECTION_SCHEMES:
        raise ThermalError(
            f"unknown advection scheme {scheme!r}; known: {ADVECTION_SCHEMES}"
        )
    rows: list = []
    cols: list = []
    vals: list = []
    b1 = np.zeros(n_nodes)
    for spec in specs:
        if spec.pair_nodes.size:
            i = spec.pair_nodes[:, 0]
            j = spec.pair_nodes[:, 1]
            q = spec.pair_flows
            if scheme == ADVECTION_CENTRAL:
                # For node i, neighbor j: Q_{j,i} = -q  =>  A[i, j] += C_v q / 2.
                rows.append(i)
                cols.append(j)
                vals.append(0.5 * c_v * q)
                # For node j, neighbor i: Q_{i,j} = +q  =>  A[j, i] -= C_v q / 2.
                rows.append(j)
                cols.append(i)
                vals.append(-0.5 * c_v * q)
            else:
                donor = np.where(q >= 0.0, i, j)
                receiver = np.where(q >= 0.0, j, i)
                flow = np.abs(q)
                rows.append(donor)
                cols.append(donor)
                vals.append(c_v * flow)
                rows.append(receiver)
                cols.append(donor)
                vals.append(-c_v * flow)
        if scheme == ADVECTION_CENTRAL:
            diag = 0.5 * c_v * (spec.inlet_flows + spec.outlet_flows)
        else:
            diag = c_v * spec.outlet_flows
        rows.append(spec.node_ids)
        cols.append(spec.node_ids)
        vals.append(diag)
        np.add.at(b1, spec.node_ids, c_v * spec.inlet_flows * inlet_temperature)
    if rows:
        row_arr = np.concatenate(rows)
        col_arr = np.concatenate(cols)
        val_arr = np.concatenate(vals)
    else:
        row_arr = np.zeros(0, dtype=np.int64)
        col_arr = np.zeros(0, dtype=np.int64)
        val_arr = np.zeros(0)
    matrix = coo_matrix(
        (val_arr, (row_arr, col_arr)), shape=(n_nodes, n_nodes)
    ).tocsc()
    return matrix, b1


class ConductanceBuilder:
    """Accumulates pairwise conductances into a sparse stiffness matrix ``K``."""

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self._rows: list = []
        self._cols: list = []
        self._vals: list = []
        self._diag = np.zeros(n_nodes)

    def add_pairs(
        self, node_a: np.ndarray, node_b: np.ndarray, conductance: np.ndarray
    ) -> None:
        """Add conductances between node pairs (vectorized)."""
        node_a = np.asarray(node_a, dtype=np.int64)
        node_b = np.asarray(node_b, dtype=np.int64)
        g = np.asarray(conductance, dtype=float)
        keep = g > 0
        if not keep.all():
            node_a, node_b, g = node_a[keep], node_b[keep], g[keep]
        if node_a.size == 0:
            return
        np.add.at(self._diag, node_a, g)
        np.add.at(self._diag, node_b, g)
        self._rows.extend((node_a, node_b))
        self._cols.extend((node_b, node_a))
        self._vals.extend((-g, -g))

    def add_grounded(self, nodes: np.ndarray, conductance: np.ndarray) -> None:
        """Add conductances from nodes to a fixed-temperature reservoir."""
        nodes = np.asarray(nodes, dtype=np.int64)
        g = np.asarray(conductance, dtype=float)
        np.add.at(self._diag, nodes, g)

    def build(self) -> csc_matrix:
        """Assemble the accumulated conductances into a CSC matrix."""
        rows = list(self._rows)
        cols = list(self._cols)
        vals = list(self._vals)
        rows.append(np.arange(self.n_nodes, dtype=np.int64))
        cols.append(np.arange(self.n_nodes, dtype=np.int64))
        vals.append(self._diag)
        return coo_matrix(
            (
                np.concatenate(vals),
                (np.concatenate(rows), np.concatenate(cols)),
            ),
            shape=(self.n_nodes, self.n_nodes),
        ).tocsc()


class _PressureShiftState:
    """Cached Woodbury data for incremental solves across pressures.

    The operator family ``A(P) = K + P A_adv`` differs from the base
    ``A(P0)`` by ``(P - P0) A_adv``, and the advection matrix has nonzero
    rows only at liquid nodes: ``A_adv = U V^T`` with ``U`` the selector of
    those ``r`` rows and ``V^T = A_adv[rows, :]``.  One base factorization
    plus ``W = A(P0)^{-1} U`` (an ``r``-column multi-RHS solve, paid once)
    turns every later pressure probe into a single triangular solve and an
    ``r x r`` dense solve -- instead of a fresh sparse factorization.
    """

    __slots__ = ("p0", "factor", "rows", "vt", "w", "m")

    def __init__(
        self,
        p0: float,
        factor: "linalg.Factorization",
        rows: np.ndarray,
        vt: csc_matrix,
        w: np.ndarray,
        m: np.ndarray,
    ) -> None:
        self.p0 = p0
        self.factor = factor
        self.rows = rows
        self.vt = vt
        self.w = w
        self.m = m


#: Sentinel: the advection row rank exceeds the configured threshold, so
#: the incremental pressure-shift path is permanently off for this system.
_SHIFT_DISABLED = object()


class LinearThermalSystem:
    """Solves ``(K + P A) T = b0 + P b1`` for the node temperature vector.

    Shared back end of both simulators; subclass meshes provide the matrices
    and interpret the solution vector.

    Solver reuse: on first use, ``K`` and ``A`` are aligned onto the union
    sparsity pattern once, so assembling the operator at a new pressure is a
    single fused-data sum instead of a full sparse addition.  Factorizations
    are memoized per quantized pressure (:data:`~repro.constants.
    PRESSURE_KEY_DECIMALS`), so re-solving at a pressure the searches already
    probed only pays the cheap triangular sweeps.

    Incremental solves: when :class:`~repro.linalg.LinalgConfig` enables
    them (the default), pressure probes after the first are answered through
    the Woodbury pressure-shift path (see :class:`_PressureShiftState`)
    instead of refactorizing, guarded by a relative-residual check that
    falls back to the exact path on any doubt.  ``solve(..., exact=True)``
    bypasses the incremental path entirely -- final scoring uses it so
    results are bitwise identical with incremental updates on or off.
    """

    #: Factorizations retained per system (the pressure searches probe a few
    #: dozen distinct pressures; an LRU this size never thrashes on them).
    LU_CACHE_SIZE = 32

    def __init__(
        self,
        stiffness: csc_matrix,
        advection: csc_matrix,
        rhs_static: np.ndarray,
        rhs_advection: np.ndarray,
    ) -> None:
        self.stiffness = stiffness
        self.advection = advection
        self.rhs_static = rhs_static
        self.rhs_advection = rhs_advection
        self.n_nodes = stiffness.shape[0]
        self._k_aligned: Optional[csc_matrix] = None
        self._a_aligned: Optional[csc_matrix] = None
        self._lu_cache: "OrderedDict[float, object]" = OrderedDict()
        self._shift: Any = None
        self._base_key: Optional[float] = None

    # -- operator assembly with structure reuse -------------------------

    def _build_aligned(self) -> None:
        """Expand ``K`` and ``A`` onto their shared (union) sparsity pattern.

        Both matrices are rebuilt from one concatenated COO triplet list, so
        their CSC ``indices``/``indptr`` come out identical; the operator at
        any pressure is then just ``K.data + P * A.data`` on that pattern.
        """
        k_coo = self.stiffness.tocoo()
        a_coo = self.advection.tocoo()
        rows = np.concatenate([k_coo.row, a_coo.row])
        cols = np.concatenate([k_coo.col, a_coo.col])
        shape = (self.n_nodes, self.n_nodes)
        k_data = np.concatenate([k_coo.data, np.zeros(a_coo.nnz)])
        a_data = np.concatenate([np.zeros(k_coo.nnz), a_coo.data])
        self._k_aligned = coo_matrix((k_data, (rows, cols)), shape=shape).tocsc()
        self._a_aligned = coo_matrix((a_data, (rows, cols)), shape=shape).tocsc()
        # Identical triplet coordinates guarantee identical structure.
        assert self._k_aligned.nnz == self._a_aligned.nnz

    def _operator(self, p_sys: float) -> csc_matrix:
        """``K + P A`` assembled on the cached shared sparsity pattern."""
        if self._k_aligned is None:
            self._build_aligned()
        return csc_matrix(
            (
                self._k_aligned.data + p_sys * self._a_aligned.data,
                self._a_aligned.indices,
                self._a_aligned.indptr,
            ),
            shape=(self.n_nodes, self.n_nodes),
        )

    def _factorize(self, p_sys: float) -> Any:
        """A (cached) LU factorization of the operator at ``p_sys``."""
        key = quantize_key(p_sys)
        lu = self._lu_cache.get(key)
        if lu is not None:
            self._lu_cache.move_to_end(key)
            profiling.increment("thermal.lu_cache_hits")
            return lu
        with telemetry.span("thermal.factorize", nodes=self.n_nodes):
            with profiling.timer("thermal.factorize"):
                try:
                    lu = linalg.factorize(self._operator(p_sys))
                except LinalgError as exc:
                    raise ThermalError(
                        "thermal system is singular; some nodes may be "
                        "thermally isolated from the coolant"
                    ) from exc
        profiling.increment("thermal.factorizations")
        if self._base_key is None:
            self._base_key = key
        self._lu_cache[key] = lu
        while len(self._lu_cache) > self.LU_CACHE_SIZE:
            self._lu_cache.popitem(last=False)
        return lu

    # -- solves ----------------------------------------------------------

    def solve(self, p_sys: float, exact: bool = False) -> np.ndarray:
        """Node temperatures at one system pressure drop.

        Args:
            p_sys: System pressure drop in Pa (> 0).
            exact: Bypass the incremental pressure-shift path and solve
                through a (cached) exact factorization.  Final scoring
                passes ``True`` so results never depend on whether
                incremental updates are enabled.
        """
        if p_sys <= 0:
            raise ThermalError(
                f"system pressure must be positive for a steady solution, "
                f"got {p_sys}"
            )
        temperatures: Optional[np.ndarray] = None
        if not exact and quantize_key(p_sys) not in self._lu_cache:
            temperatures = self._solve_incremental(p_sys)
        if temperatures is None:
            lu = self._factorize(p_sys)
            rhs = self.rhs_static + p_sys * self.rhs_advection
            with telemetry.span("thermal.solve", nodes=self.n_nodes):
                with profiling.timer("thermal.solve"):
                    temperatures = lu.solve(rhs)
            profiling.increment("thermal.solves")
        if not np.all(np.isfinite(temperatures)):
            raise ThermalError("thermal solve produced non-finite temperatures")
        return temperatures

    # -- incremental pressure-shift path ---------------------------------

    def _solve_incremental(self, p_sys: float) -> Optional[np.ndarray]:
        """A Woodbury solve at ``p_sys``, or ``None`` to use the exact path.

        Applicable once a base factorization exists and the advection
        operator's row rank fits the configured threshold.  The result is
        accepted only if its relative residual on the *true* operator at
        ``p_sys`` meets ``residual_rtol``; otherwise the caller refactorizes
        exactly (and the fallback is counted).
        """
        config = linalg.current_config()
        if not config.incremental:
            return None
        shift = self._shift
        if shift is None:
            if self._base_key is None:
                return None  # first solve establishes the exact base
            shift = self._build_shift(config)
        if shift is _SHIFT_DISABLED:
            return None
        rhs = self.rhs_static + p_sys * self.rhs_advection
        dp = p_sys - shift.p0
        with profiling.timer("linalg.incremental_solve"):
            y = shift.factor.solve(rhs)
            if shift.rows.size == 0 or dp == 0.0:
                x = y
            else:
                r = shift.rows.size
                cap = shift.m + np.eye(r) / dp
                try:
                    z = np.linalg.solve(cap, shift.vt @ y)
                except np.linalg.LinAlgError:
                    profiling.increment("linalg.incremental_fallbacks")
                    return None
                x = y - shift.w @ z
        residual = self._operator(p_sys) @ x - rhs
        scale = max(float(np.max(np.abs(rhs))), 1.0)
        if (
            not np.all(np.isfinite(x))
            or float(np.max(np.abs(residual))) > config.residual_rtol * scale
        ):
            profiling.increment("linalg.incremental_fallbacks")
            return None
        profiling.increment("linalg.incremental_solves")
        return corrupt(SITE_LINALG_UPDATE, x)

    def _build_shift(self, config: "linalg.LinalgConfig") -> Any:
        """Build (or permanently disable) the pressure-shift state."""
        advection = self.advection.tocoo()
        mask = advection.data != 0.0
        rows = np.unique(advection.row[mask])
        if rows.size > config.rank_threshold:
            self._shift = _SHIFT_DISABLED
            return self._shift
        base_key = self._base_key
        factor = self._lu_cache.get(base_key)
        if factor is None:
            factor = self._factorize(base_key)
        if rows.size:
            vt = self.advection.tocsr()[rows, :]
            unit = np.zeros((self.n_nodes, rows.size))
            unit[rows, np.arange(rows.size)] = 1.0
            w = factor.solve_many(unit)
            m = np.asarray(vt @ w)
        else:
            vt = self.advection.tocsr()[rows, :]
            w = np.zeros((self.n_nodes, 0))
            m = np.zeros((0, 0))
        self._shift = _PressureShiftState(
            p0=float(base_key), factor=factor, rows=rows, vt=vt, w=w, m=m
        )
        profiling.increment("linalg.shift_bases")
        return self._shift

    def system_matrix(self, p_sys: float) -> csc_matrix:
        """The assembled operator at ``p_sys`` (used by the transient solver)."""
        return self._operator(p_sys)

    def rhs(self, p_sys: float) -> np.ndarray:
        """Right-hand side (sources + inlet enthalpy) at ``p_sys``."""
        return self.rhs_static + p_sys * self.rhs_advection
