"""Transient thermal analysis (the extension Section 2.3 mentions).

Wraps a steady simulator (4RM or 2RM) and integrates::

    C dT/dt = -(K + P A) T + b(P)

with backward Euler: ``(C/dt + K + P A) T_{n+1} = (C/dt) T_n + b``.  The
implicit step is unconditionally stable, which matters because channel-layer
liquid nodes have tiny capacitances compared with bulk silicon tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np
from scipy.sparse import diags

from .. import linalg
from ..errors import LinalgError, ThermalError
from .result import ThermalResult


@dataclass
class TransientTrace:
    """Time series produced by a transient run.

    Attributes:
        times: Simulation times in seconds, one per stored step.
        results: Full :class:`ThermalResult` snapshots aligned with ``times``.
    """

    times: List[float]
    results: List[ThermalResult]

    @property
    def t_max_series(self) -> np.ndarray:
        """Peak temperature per stored step."""
        return np.array([r.t_max for r in self.results])

    @property
    def delta_t_series(self) -> np.ndarray:
        """Thermal gradient per stored step."""
        return np.array([r.delta_t for r in self.results])

    def final(self) -> ThermalResult:
        """The last stored snapshot."""
        if not self.results:
            raise ThermalError("transient trace is empty")
        return self.results[-1]


class TransientSimulator:
    """Backward-Euler transient integrator over a steady simulator.

    Args:
        steady: An :class:`~repro.thermal.rc4.RC4Simulator` or
            :class:`~repro.thermal.rc2.RC2Simulator` instance.  Its assembled
            matrices are reused; nothing is rebuilt.
        p_sys: System pressure drop during the transient, Pa (fixed; runtime
            flow-rate control is listed as future work in the paper).
    """

    def __init__(self, steady, p_sys: float) -> None:
        if p_sys <= 0:
            raise ThermalError(f"system pressure must be positive, got {p_sys}")
        self.steady = steady
        self.p_sys = float(p_sys)
        self.capacitances = steady.node_capacitances()
        if (self.capacitances <= 0).any():
            raise ThermalError("every thermal node needs positive capacitance")
        self._matrix = steady.system.system_matrix(self.p_sys)
        self._rhs = steady.system.rhs(self.p_sys)
        self.n_nodes = steady.system.n_nodes

    def initial_state(self, temperature: Optional[float] = None) -> np.ndarray:
        """A uniform initial temperature vector (defaults to the inlet)."""
        if temperature is None:
            temperature = self.steady.inlet_temperature
        return np.full(self.n_nodes, float(temperature))

    def run(
        self,
        duration: float,
        dt: float,
        initial: Optional[np.ndarray] = None,
        store_every: int = 1,
        power_scale: Optional[Callable[[float], float]] = None,
    ) -> TransientTrace:
        """Integrate for ``duration`` seconds with step ``dt``.

        Args:
            duration: Total simulated time, s.
            dt: Backward-Euler step, s.
            initial: Starting temperature vector; defaults to uniform inlet
                temperature.
            store_every: Keep every n-th step in the trace (step 0 and the
                final step are always kept).
            power_scale: Optional function of time returning a multiplier on
                the heat sources (models DVFS-style power steps).  The
                advection/inlet terms are never scaled.

        Returns:
            A :class:`TransientTrace` with snapshots.
        """
        if dt <= 0 or duration <= 0:
            raise ThermalError(
                f"duration and dt must be positive, got {duration}, {dt}"
            )
        n_steps = int(round(duration / dt))
        if n_steps < 1:
            raise ThermalError("duration shorter than one step")
        state = (
            self.initial_state() if initial is None else np.asarray(initial, float)
        )
        if state.shape != (self.n_nodes,):
            raise ThermalError(
                f"initial state has shape {state.shape}, expected "
                f"({self.n_nodes},)"
            )
        c_over_dt = self.capacitances / dt
        lhs = (self._matrix + diags(c_over_dt)).tocsc()
        try:
            lu = linalg.factorize(lhs)
        except LinalgError as exc:
            raise ThermalError(
                "backward-Euler operator could not be factorized"
            ) from exc

        # Split the RHS so sources can be rescaled over time: the static part
        # contains the power map, the advection part the inlet-enthalpy term.
        rhs_power = self.steady.system.rhs_static
        rhs_adv = self.p_sys * self.steady.system.rhs_advection

        times = [0.0]
        results = [self.steady._package(self.p_sys, state.copy())]
        for step in range(1, n_steps + 1):
            time = step * dt
            scale = 1.0 if power_scale is None else float(power_scale(time))
            rhs = c_over_dt * state + scale * rhs_power + rhs_adv
            state = lu.solve(rhs)
            if not np.all(np.isfinite(state)):
                raise ThermalError(f"transient diverged at step {step}")
            if step % store_every == 0 or step == n_steps:
                times.append(time)
                results.append(self.steady._package(self.p_sys, state.copy()))
        return TransientTrace(times=times, results=results)

    def steady_state(self) -> ThermalResult:
        """The steady solution this transient converges to."""
        return self.steady.solve(self.p_sys)
