"""2-register-model (2RM) porous-medium thermal simulator (Section 2.3).

The fast model the paper contributes: the horizontal discretization is
coarsened to ``m x m``-cell tiles.  In channel layers each tile becomes *two*
thermal nodes -- one solid, one liquid -- because of their diverse properties;
in plain solid layers each tile is one node.  The conductances are:

* tile-to-tile solid conduction through **complete conducting paths** only:
  a row (column) of basic cells counts towards the effective conductance
  between a channel-layer solid node and the tile interface only if it is
  solid the whole way from the node's half-tile to the interface; the two
  half-tile conductances combine in series (Eq. 7);
* solid-liquid transfer in the **vertical direction only**: the side-wall
  area is folded into the top/bottom wall convection,
  ``g*_sl,top/bottom = h_conv (A_top/bottom + A_side / 2)`` (Eq. 8), in series
  with the half-slab conduction of the adjacent layer (Eq. 5);
* liquid-liquid advection driven by the **net** flow rate across each tile
  interface, with the same Eq. 6 discretization as the 4RM model.

An ``m x m`` coarsening shrinks the linear system by about ``m^2`` and
accelerates simulation by more than ``m^2`` (Fig. 9), which is what makes the
paper's inner-loop network evaluation affordable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..constants import (
    EDGE_CONDUCTANCE_FACTOR,
    INLET_TEMPERATURE,
    NUSSELT_NUMBER,
)
from .. import telemetry
from ..errors import GeometryError, ThermalError
from ..faults import SITE_THERMAL_RC2, corrupt
from ..flow.network import FlowField
from ..geometry.layers import ChannelLayer, SolidLayer, SourceLayer
from ..geometry.stack import Stack
from ..materials import Coolant
from .common import (
    ADVECTION_SCHEME_DEFAULT,
    AdvectionSpec,
    ConductanceBuilder,
    LinearThermalSystem,
    assemble_advection,
    h_conv,
    slab_half_conductance,
)
from .mesh import Tiling
from .result import ThermalResult


class RC2Simulator:
    """Steady-state 2RM simulator for one stack.

    Args:
        stack: The 3D IC stack to simulate.
        coolant: Working fluid shared by all channel layers.
        tile_size: Thermal-cell edge in basic cells (``m``); the paper adopts
            ``m = 4`` (400 um tiles on the 100 um contest grid) as the
            accuracy/runtime sweet spot.
        edge_factor / inlet_temperature / nusselt / top_bc /
            tsv_material: As in :class:`~repro.thermal.rc4.RC4Simulator`
            (TSV cells contribute area-weighted vertical conduction per
            tile when ``tsv_material`` is set).
        advection_scheme: ``"upwind"`` (monotone, default) or ``"central"``
            (the paper's Eq. 6); see
            :func:`~repro.thermal.common.assemble_advection`.
    """

    model_name = "2RM"

    def __init__(
        self,
        stack: Stack,
        coolant: Coolant,
        tile_size: int = 4,
        edge_factor: float = EDGE_CONDUCTANCE_FACTOR,
        inlet_temperature: float = INLET_TEMPERATURE,
        nusselt: float = NUSSELT_NUMBER,
        top_bc: Optional[Tuple[float, float]] = None,
        tsv_material=None,
        advection_scheme: str = ADVECTION_SCHEME_DEFAULT,
    ) -> None:
        if tile_size < 1:
            raise ThermalError(f"tile size must be >= 1, got {tile_size}")
        self.stack = stack
        self.coolant = coolant
        self.tile_size = int(tile_size)
        self.edge_factor = float(edge_factor)
        self.inlet_temperature = float(inlet_temperature)
        self.nusselt = float(nusselt)
        self.top_bc = top_bc
        self.tsv_material = tsv_material
        self.advection_scheme = str(advection_scheme)
        self._check_stack()
        self.nrows, self.ncols = stack.nrows, stack.ncols
        self.tiling = Tiling(self.nrows, self.ncols, self.tile_size)
        self.flow_fields: List[FlowField] = [
            FlowField(layer.grid, layer.channel_height, coolant, self.edge_factor)
            for layer in stack.channel_layers()
        ]
        self._allocate_nodes()
        self._build_system()

    # ------------------------------------------------------------------

    def _check_stack(self) -> None:
        layers = self.stack.layers
        for below, above in zip(layers, layers[1:]):
            if isinstance(below, ChannelLayer) and isinstance(above, ChannelLayer):
                raise GeometryError(
                    f"adjacent channel layers {below.name!r} / {above.name!r} "
                    "are not supported"
                )

    def _allocate_nodes(self) -> None:
        """Assign global node ids per layer.

        Solid layers get one node per tile.  Channel layers get a solid node
        for every tile containing at least one solid cell and a liquid node
        for every tile containing at least one liquid cell (-1 marks absent
        nodes).
        """
        shape = self.tiling.shape
        counter = 0
        self._solid_ids: List[np.ndarray] = []
        self._liquid_ids: List[Optional[np.ndarray]] = []
        self._solid_counts: List[Optional[np.ndarray]] = []
        self._liquid_counts: List[Optional[np.ndarray]] = []
        for layer in self.stack.layers:
            if isinstance(layer, ChannelLayer):
                liquid_count = self.tiling.aggregate_count(layer.grid.liquid)
                solid_count = self.tiling.aggregate_count(~layer.grid.liquid)
                solid = np.full(shape, -1, dtype=np.int64)
                n_solid = int((solid_count > 0).sum())
                solid[solid_count > 0] = counter + np.arange(n_solid)
                counter += n_solid
                liquid = np.full(shape, -1, dtype=np.int64)
                n_liquid = int((liquid_count > 0).sum())
                liquid[liquid_count > 0] = counter + np.arange(n_liquid)
                counter += n_liquid
                self._solid_ids.append(solid)
                self._liquid_ids.append(liquid)
                self._solid_counts.append(solid_count)
                self._liquid_counts.append(liquid_count)
            else:
                ids = counter + np.arange(self.tiling.n_tiles, dtype=np.int64)
                counter += self.tiling.n_tiles
                self._solid_ids.append(ids.reshape(shape))
                self._liquid_ids.append(None)
                self._solid_counts.append(None)
                self._liquid_counts.append(None)
        self.n_nodes = counter

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def _build_system(self) -> None:
        builder = ConductanceBuilder(self.n_nodes)
        rhs_static = np.zeros(self.n_nodes)

        for k, layer in enumerate(self.stack.layers):
            if isinstance(layer, ChannelLayer):
                self._add_channel_horizontal(builder, k, layer)
            else:
                self._add_solid_horizontal(builder, k, layer)
                if isinstance(layer, SourceLayer):
                    tile_power = self.tiling.aggregate_sum(layer.power_map)
                    rhs_static[self._solid_ids[k].ravel()] += tile_power.ravel()

        for k in range(self.stack.n_layers - 1):
            self._add_vertical(builder, k)

        if self.top_bc is not None:
            self._add_top_bc(builder, rhs_static)

        specs = self._advection_specs()
        advection, rhs_adv = assemble_advection(
            self.n_nodes,
            specs,
            self.coolant.volumetric_heat_capacity,
            self.inlet_temperature,
            scheme=self.advection_scheme,
        )
        self._specs = specs
        self.system = LinearThermalSystem(
            builder.build(), advection, rhs_static, rhs_adv
        )

    # -- horizontal conduction in plain solid layers ---------------------

    def _add_solid_horizontal(
        self, builder: ConductanceBuilder, k: int, layer: SolidLayer
    ) -> None:
        t = self.tiling
        w = self.stack.cell_width
        ids = self._solid_ids[k]
        k_mat = layer.material.thermal_conductivity
        heights = t.tile_heights().astype(float)
        widths = t.tile_widths().astype(float)
        # East-west pairs: interface height heights[R]*w, half lengths
        # widths[C]*w/2 and widths[C+1]*w/2.
        if t.n_tile_cols > 1:
            area = heights[:, None] * w * layer.thickness  # (Rn, 1)
            g_a = k_mat * area / (widths[None, :-1] * w / 2.0)
            g_b = k_mat * area / (widths[None, 1:] * w / 2.0)
            g = _series_arr(g_a, g_b)
            builder.add_pairs(
                ids[:, :-1].ravel(), ids[:, 1:].ravel(), g.ravel()
            )
        # North-south pairs.
        if t.n_tile_rows > 1:
            area = widths[None, :] * w * layer.thickness  # (1, Cn)
            g_a = k_mat * area / (heights[:-1, None] * w / 2.0)
            g_b = k_mat * area / (heights[1:, None] * w / 2.0)
            g = _series_arr(g_a, g_b)
            builder.add_pairs(
                ids[:-1, :].ravel(), ids[1:, :].ravel(), g.ravel()
            )

    # -- horizontal conduction in channel layers (complete paths) --------

    def _add_channel_horizontal(
        self, builder: ConductanceBuilder, k: int, layer: ChannelLayer
    ) -> None:
        t = self.tiling
        w = self.stack.cell_width
        h_c = layer.channel_height
        k_wall = layer.wall_material.thermal_conductivity
        solid = ~layer.grid.liquid
        ids = self._solid_ids[k]

        east_paths, west_paths = _complete_paths(solid, t, axis=1)
        south_paths, north_paths = _complete_paths(solid, t, axis=0)
        widths = t.tile_widths().astype(float)
        heights = t.tile_heights().astype(float)

        if t.n_tile_cols > 1:
            # Tile (R, C) east half -> interface -> tile (R, C+1) west half.
            g_a = east_paths[:, :-1] * k_wall * (w * h_c) / (
                widths[None, :-1] * w / 2.0
            )
            g_b = west_paths[:, 1:] * k_wall * (w * h_c) / (
                widths[None, 1:] * w / 2.0
            )
            g = _series_arr(g_a, g_b)
            a = ids[:, :-1].ravel()
            b = ids[:, 1:].ravel()
            valid = (a >= 0) & (b >= 0)
            builder.add_pairs(a[valid], b[valid], g.ravel()[valid])
        if t.n_tile_rows > 1:
            g_a = south_paths[:-1, :] * k_wall * (w * h_c) / (
                heights[:-1, None] * w / 2.0
            )
            g_b = north_paths[1:, :] * k_wall * (w * h_c) / (
                heights[1:, None] * w / 2.0
            )
            g = _series_arr(g_a, g_b)
            a = ids[:-1, :].ravel()
            b = ids[1:, :].ravel()
            valid = (a >= 0) & (b >= 0)
            builder.add_pairs(a[valid], b[valid], g.ravel()[valid])

    # -- vertical conduction ---------------------------------------------

    def _add_vertical(self, builder: ConductanceBuilder, k: int) -> None:
        stack = self.stack
        w = stack.cell_width
        t = self.tiling
        below = stack.layers[k]
        above = stack.layers[k + 1]
        tile_areas = (
            t.tile_heights()[:, None] * t.tile_widths()[None, :]
        ).astype(float) * w * w

        def material_of(layer: Any) -> Any:
            return (
                layer.wall_material
                if isinstance(layer, ChannelLayer)
                else layer.material
            )

        channel = None
        if isinstance(below, ChannelLayer):
            channel, other, other_k = below, above, k + 1
        elif isinstance(above, ChannelLayer):
            channel, other, other_k = above, below, k
        if channel is None:
            # Plain solid-solid interface: full tile area, series halves.
            g_a = slab_half_conductance(
                material_of(below).thermal_conductivity, 1.0, below.thickness
            )
            g_b = slab_half_conductance(
                material_of(above).thermal_conductivity, 1.0, above.thickness
            )
            g = _series_arr(
                g_a * tile_areas, g_b * tile_areas
            )
            builder.add_pairs(
                self._solid_ids[k].ravel(),
                self._solid_ids[k + 1].ravel(),
                g.ravel(),
            )
            return

        channel_k = k if channel is below else k + 1
        solid_counts = self._solid_counts[channel_k].astype(float)
        liquid_counts = self._liquid_counts[channel_k].astype(float)
        other_ids = self._solid_ids[other_k]
        k_other = material_of(other).thermal_conductivity

        # Channel solid node <-> other layer node through the solid footprint.
        solid_area = solid_counts * w * w
        if self.tsv_material is not None:
            tsv_counts = self.tiling.aggregate_count(
                channel.grid.tsv_mask & ~channel.grid.liquid
            ).astype(float)
            plain_counts = solid_counts - tsv_counts
            g_chan = (
                slab_half_conductance(
                    channel.wall_material.thermal_conductivity,
                    1.0,
                    channel.thickness,
                )
                * plain_counts
                * w
                * w
                + slab_half_conductance(
                    self.tsv_material.thermal_conductivity,
                    1.0,
                    channel.thickness,
                )
                * tsv_counts
                * w
                * w
            )
        else:
            g_chan = np.where(
                solid_area > 0,
                slab_half_conductance(
                    channel.wall_material.thermal_conductivity,
                    1.0,
                    channel.thickness,
                )
                * solid_area,
                0.0,
            )
        g_oth = slab_half_conductance(k_other, 1.0, other.thickness) * solid_area
        g = _series_arr(g_chan, g_oth)
        a = self._solid_ids[channel_k].ravel()
        b = other_ids.ravel()
        valid = a >= 0
        builder.add_pairs(a[valid], b[valid], g.ravel()[valid])

        # Channel liquid node <-> other layer node: Eq. 8 folded side walls.
        liquid_area = liquid_counts * w * w
        side_area = (
            self._side_wall_pairs(channel_k, channel).astype(float)
            * w
            * channel.channel_height
        )
        h = h_conv(self.coolant, w, channel.channel_height, self.nusselt)
        g_conv = h * (liquid_area + side_area / 2.0)
        g_oth = slab_half_conductance(k_other, 1.0, other.thickness) * liquid_area
        g = _series_arr(g_conv, g_oth)
        a = self._liquid_ids[channel_k].ravel()
        valid = a >= 0
        builder.add_pairs(a[valid], b[valid], g.ravel()[valid])

    def _side_wall_pairs(self, channel_k: int, channel: ChannelLayer) -> np.ndarray:
        """Count interior solid-liquid walls per tile.

        Each solid-liquid 4-adjacency on the basic-cell grid is one side wall;
        it is attributed to the tile of the *liquid* cell (halved between top
        and bottom transfer by the caller, per Eq. 8).  Cached per layer.
        """
        cache = getattr(self, "_side_wall_cache", None)
        if cache is None:
            cache = {}
            self._side_wall_cache = cache
        if channel_k in cache:
            return cache[channel_k]
        liq = channel.grid.liquid
        counts = np.zeros(liq.shape, dtype=np.int64)
        counts[:, :-1] += (liq[:, :-1] & ~liq[:, 1:]).astype(np.int64)
        counts[:, 1:] += (liq[:, 1:] & ~liq[:, :-1]).astype(np.int64)
        counts[:-1, :] += (liq[:-1, :] & ~liq[1:, :]).astype(np.int64)
        counts[1:, :] += (liq[1:, :] & ~liq[:-1, :]).astype(np.int64)
        per_tile = self.tiling.aggregate_sum(counts.astype(float))
        cache[channel_k] = per_tile
        return per_tile

    def _add_top_bc(
        self, builder: ConductanceBuilder, rhs_static: np.ndarray
    ) -> None:
        h_amb, t_amb = self.top_bc
        if h_amb < 0:
            raise ThermalError(
                f"ambient heat transfer coefficient must be >= 0, got {h_amb}"
            )
        t = self.tiling
        w = self.stack.cell_width
        tile_areas = (
            t.tile_heights()[:, None] * t.tile_widths()[None, :]
        ).astype(float) * w * w
        top_k = self.stack.n_layers - 1
        top = self.stack.layers[top_k]
        if isinstance(top, ChannelLayer):
            # Expose only the solid footprint of the channel layer to ambient.
            solid_area = self._solid_counts[top_k].astype(float) * w * w
            ids = self._solid_ids[top_k].ravel()
            g = (h_amb * solid_area).ravel()
            valid = ids >= 0
            builder.add_grounded(ids[valid], g[valid])
            rhs_static[ids[valid]] += g[valid] * t_amb
        else:
            ids = self._solid_ids[top_k].ravel()
            g = (h_amb * tile_areas).ravel()
            builder.add_grounded(ids, g)
            rhs_static[ids] += g * t_amb

    # -- advection ---------------------------------------------------------

    def _advection_specs(self) -> List[AdvectionSpec]:
        specs = []
        t = self.tiling
        channel_indices = self.stack.channel_layer_indices()
        for layer_index, field in zip(channel_indices, self.flow_fields):
            grid = self.stack.layers[layer_index].grid
            liquid_ids = self._liquid_ids[layer_index]
            cells = list(grid.liquid_cells())
            rows = np.array([r for r, _ in cells], dtype=np.int64)
            cols = np.array([c for _, c in cells], dtype=np.int64)
            cell_tile = (
                t.row_of_cell[rows] * t.n_tile_cols + t.col_of_cell[cols]
            )
            tile_node_flat = liquid_ids.ravel()
            cell_node = tile_node_flat[cell_tile]
            unit = field.at_pressure(1.0)

            # Net flow between distinct tile liquid nodes.
            net: Dict[Tuple[int, int], float] = {}
            node_a = cell_node[unit.edge_cells[:, 0]]
            node_b = cell_node[unit.edge_cells[:, 1]]
            for a, b, q in zip(
                node_a.tolist(), node_b.tolist(), unit.edge_flows.tolist()
            ):
                if a == b:
                    continue
                if a < b:
                    net[(a, b)] = net.get((a, b), 0.0) + q
                else:
                    net[(b, a)] = net.get((b, a), 0.0) - q
            if net:
                pair_nodes = np.array(list(net.keys()), dtype=np.int64)
                pair_flows = np.array(list(net.values()))
            else:
                pair_nodes = np.zeros((0, 2), dtype=np.int64)
                pair_flows = np.zeros(0)

            # Aggregate inlet/outlet flows onto tile liquid nodes.
            node_list = np.unique(cell_node)
            remap = {int(n): i for i, n in enumerate(node_list)}
            inlet = np.zeros(len(node_list))
            outlet = np.zeros(len(node_list))
            for cell_i, node in enumerate(cell_node.tolist()):
                idx = remap[node]
                inlet[idx] += unit.inlet_flows[cell_i]
                outlet[idx] += unit.outlet_flows[cell_i]
            specs.append(
                AdvectionSpec(
                    pair_nodes=pair_nodes,
                    pair_flows=pair_flows,
                    node_ids=node_list,
                    inlet_flows=inlet,
                    outlet_flows=outlet,
                )
            )
        return specs

    # ------------------------------------------------------------------
    # Solve
    # ------------------------------------------------------------------

    def solve(self, p_sys: float, exact: bool = False) -> ThermalResult:
        """Steady temperatures at system pressure drop ``p_sys`` (Pa).

        ``exact=True`` bypasses the incremental solver path (final scoring).
        """
        with telemetry.span("thermal.rc2.solve", cells=self.n_nodes):
            temperatures = corrupt(
                SITE_THERMAL_RC2, self.system.solve(p_sys, exact=exact)
            )
            if not np.all(np.isfinite(temperatures)):
                raise ThermalError(
                    "2RM solve produced non-finite temperatures"
                )
            return self._package(p_sys, temperatures)

    def node_capacitances(self) -> np.ndarray:
        """Heat capacity of every thermal node in J/K (transient extension)."""
        w = self.stack.cell_width
        cell_area = w * w
        caps = np.zeros(self.n_nodes)
        for k, layer in enumerate(self.stack.layers):
            if isinstance(layer, ChannelLayer):
                volume = cell_area * layer.channel_height
                solid_ids = self._solid_ids[k]
                mask = solid_ids >= 0
                caps[solid_ids[mask]] = (
                    self._solid_counts[k][mask]
                    * volume
                    * layer.wall_material.volumetric_heat_capacity
                )
                liquid_ids = self._liquid_ids[k]
                mask = liquid_ids >= 0
                caps[liquid_ids[mask]] = (
                    self._liquid_counts[k][mask]
                    * volume
                    * self.coolant.volumetric_heat_capacity
                )
            else:
                t = self.tiling
                tile_cells = (
                    t.tile_heights()[:, None] * t.tile_widths()[None, :]
                ).astype(float)
                caps[self._solid_ids[k].ravel()] = (
                    tile_cells.ravel()
                    * cell_area
                    * layer.thickness
                    * layer.material.volumetric_heat_capacity
                )
        return caps

    def _package(self, p_sys: float, temperatures: np.ndarray) -> ThermalResult:
        stack = self.stack
        fields = []
        liquid_fields = {}
        for k, layer in enumerate(stack.layers):
            if isinstance(layer, ChannelLayer):
                solid_tile = _lookup(temperatures, self._solid_ids[k])
                liquid_tile = _lookup(temperatures, self._liquid_ids[k])
                solid_cells = self.tiling.expand(solid_tile)
                liquid_cells = self.tiling.expand(liquid_tile)
                field = np.where(layer.grid.liquid, liquid_cells, solid_cells)
                liquid_fields[k] = np.where(layer.grid.liquid, liquid_cells, np.nan)
            else:
                field = self.tiling.expand(
                    _lookup(temperatures, self._solid_ids[k])
                )
            fields.append(field)
        q_sys = sum(f.q_sys(p_sys) for f in self.flow_fields)
        removed = 0.0
        c_v = self.coolant.volumetric_heat_capacity
        for spec in self._specs:
            t_nodes = temperatures[spec.node_ids]
            removed += c_v * p_sys * float(
                np.dot(spec.outlet_flows, t_nodes)
                - spec.inlet_flows.sum() * self.inlet_temperature
            )
        return ThermalResult(
            p_sys=float(p_sys),
            q_sys=q_sys,
            w_pump=float(p_sys) * q_sys,
            layer_fields=fields,
            layer_names=[layer.name for layer in stack.layers],
            source_layer_indices=stack.source_layer_indices(),
            inlet_temperature=self.inlet_temperature,
            total_power=stack.total_power,
            liquid_fields=liquid_fields,
            coolant_heat_removed=removed,
        )


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _series_arr(g_a: np.ndarray, g_b: np.ndarray) -> np.ndarray:
    """Element-wise series combination; zero where either side is blocked."""
    g_a = np.asarray(g_a, dtype=float)
    g_b = np.asarray(g_b, dtype=float)
    total = g_a + g_b
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(total > 0, g_a * g_b / np.where(total > 0, total, 1.0), 0.0)
    return out


def _lookup(values: np.ndarray, ids: "np.ndarray | None") -> np.ndarray:
    """Map node ids to values; -1 (absent node) becomes NaN."""
    if ids is None:
        raise ThermalError("no node ids for this layer")
    out = np.full(ids.shape, np.nan)
    mask = ids >= 0
    out[mask] = values[ids[mask]]
    return out


def _complete_paths(
    solid: np.ndarray, tiling: Tiling, axis: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Count complete conducting paths per tile toward each interface.

    For ``axis == 1`` (east-west conduction) returns ``(east, west)`` arrays
    of shape (n_tile_rows, n_tile_cols): ``east[R, C]`` counts the rows of
    tile (R, C) that are solid across the entire half of the tile nearest its
    east interface, and ``west`` likewise for the west half.  ``axis == 0``
    returns ``(south, north)`` counting columns toward the south/north
    interfaces.
    """
    if axis == 0:
        south, north = _complete_paths(solid.T, _transposed(tiling), axis=1)
        return south.T, north.T
    t = tiling
    east = np.zeros(t.shape, dtype=np.int64)
    west = np.zeros(t.shape, dtype=np.int64)
    for tile_col in range(t.n_tile_cols):
        c0 = int(t.col_starts[tile_col])
        c1 = int(t.col_starts[tile_col + 1])
        width = c1 - c0
        half = (width + 1) // 2  # near half includes the center column
        east_block = solid[:, c1 - half : c1].all(axis=1)
        west_block = solid[:, c0 : c0 + half].all(axis=1)
        east[:, tile_col] = np.add.reduceat(
            east_block.astype(np.int64), t.row_starts[:-1]
        )
        west[:, tile_col] = np.add.reduceat(
            west_block.astype(np.int64), t.row_starts[:-1]
        )
    return east, west


def _transposed(tiling: Tiling) -> Tiling:
    """A tiling of the transposed grid (same tile size)."""
    return Tiling(tiling.ncols, tiling.nrows, tiling.tile_size)
