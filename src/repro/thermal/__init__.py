"""Thermal models for liquid-cooled 3D IC stacks.

Two steady-state simulators implement Section 2 of the paper:

* :class:`~repro.thermal.rc4.RC4Simulator` -- the 4-register-model reference:
  one thermal node per basic cell per layer, following the microchannel
  geometry exactly (Section 2.2).
* :class:`~repro.thermal.rc2.RC2Simulator` -- the fast porous-medium
  2-register model: an ``m x m`` coarsening with one solid and one liquid node
  per tile in channel layers, complete-conducting-path effective conductances
  (Eq. 7) and folded side-wall convection (Eq. 8) (Section 2.3).

Both precompute everything that does not depend on the system pressure drop,
so sweeping ``P_sys`` (the inner loop of Algorithms 2/3) only re-assembles the
advection operator and re-factorizes.

:class:`~repro.thermal.transient.TransientSimulator` extends either model to
transient analysis with backward Euler (the extension Section 2.3 mentions).
"""

from .common import convective_conductance, h_conv, series_conductance
from .control import (
    ControlTrace,
    HysteresisController,
    PIController,
    run_controlled,
)
from .mesh import Tiling
from .rc2 import RC2Simulator
from .rc4 import RC4Simulator
from .result import ThermalResult
from .transient import TransientSimulator

__all__ = [
    "ControlTrace",
    "HysteresisController",
    "PIController",
    "RC2Simulator",
    "RC4Simulator",
    "ThermalResult",
    "Tiling",
    "TransientSimulator",
    "convective_conductance",
    "h_conv",
    "run_controlled",
    "series_conductance",
]
