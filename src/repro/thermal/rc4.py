"""4-register-model (4RM) thermal simulator (Section 2.2 of the paper).

The reference model: thermal cells conform to the microchannel geometry, so
every basic cell of every layer is one thermal node.  Three kinds of heat
transfer are modeled:

* solid-solid conduction (Eq. 4), horizontally within layers and vertically
  across layer interfaces;
* solid-liquid convection (Eq. 5): channel walls exchange heat with the
  coolant through ``g_sl* = Nu k_liquid A / D_h`` in series with the half-cell
  solid conduction -- vertically through channel floors/ceilings and
  horizontally through the side walls;
* liquid-liquid advection (Eq. 6) along the local flow field, discretized
  with the central differencing scheme.

Accuracy matches 3D-ICE-style models; speed is what the 2RM model then buys.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..constants import (
    EDGE_CONDUCTANCE_FACTOR,
    INLET_TEMPERATURE,
    NUSSELT_NUMBER,
)
from .. import telemetry
from ..errors import GeometryError, ThermalError
from ..faults import SITE_THERMAL_RC4, corrupt
from ..flow.network import FlowField
from ..geometry.layers import ChannelLayer, SolidLayer, SourceLayer
from ..geometry.stack import Stack
from ..materials import Coolant
from .common import (
    ADVECTION_SCHEME_DEFAULT,
    AdvectionSpec,
    ConductanceBuilder,
    LinearThermalSystem,
    assemble_advection,
    h_conv,
    series_conductance,
    slab_half_conductance,
)
from .result import ThermalResult


class RC4Simulator:
    """Steady-state 4RM simulator for one stack.

    Everything independent of the system pressure drop (conductance matrix,
    unit flow fields, unit advection operator) is precomputed at construction;
    :meth:`solve` only assembles ``K + P A`` and factorizes.

    Args:
        stack: The 3D IC stack to simulate.
        coolant: Working fluid shared by all channel layers.
        edge_factor: Inlet/outlet hydraulic conductance scale.
        inlet_temperature: Coolant temperature at every inlet, K.
        nusselt: Nusselt number of the laminar channel flow.
        liquid_conduction: Also model conduction between adjacent liquid
            cells (off in the paper's models; advection dominates).
        top_bc: Optional ``(h, T_amb)`` convective boundary on the top layer;
            ``None`` keeps every outer surface adiabatic (contest setting).
        tsv_material: When given (typically copper), TSV-reserved cells in
            channel layers conduct vertically with this material instead of
            the channel wall -- the co-optimization hook the paper's future
            work points to.  ``None`` treats TSV cells as plain wall.
        advection_scheme: ``"upwind"`` (monotone, default) or ``"central"``
            (the paper's Eq. 6); see
            :func:`~repro.thermal.common.assemble_advection`.
    """

    model_name = "4RM"

    def __init__(
        self,
        stack: Stack,
        coolant: Coolant,
        edge_factor: float = EDGE_CONDUCTANCE_FACTOR,
        inlet_temperature: float = INLET_TEMPERATURE,
        nusselt: float = NUSSELT_NUMBER,
        liquid_conduction: bool = False,
        top_bc: Optional[Tuple[float, float]] = None,
        tsv_material=None,
        advection_scheme: str = ADVECTION_SCHEME_DEFAULT,
    ) -> None:
        self.stack = stack
        self.coolant = coolant
        self.edge_factor = float(edge_factor)
        self.inlet_temperature = float(inlet_temperature)
        self.nusselt = float(nusselt)
        self.liquid_conduction = bool(liquid_conduction)
        self.top_bc = top_bc
        self.tsv_material = tsv_material
        self.advection_scheme = str(advection_scheme)
        self._check_stack()
        self.nrows, self.ncols = stack.nrows, stack.ncols
        self._cells_per_layer = self.nrows * self.ncols
        self.n_nodes = stack.n_layers * self._cells_per_layer
        self.flow_fields: List[FlowField] = [
            FlowField(
                layer.grid, layer.channel_height, coolant, self.edge_factor
            )
            for layer in stack.channel_layers()
        ]
        self._build_system()

    # ------------------------------------------------------------------

    def _check_stack(self) -> None:
        layers = self.stack.layers
        for below, above in zip(layers, layers[1:]):
            if isinstance(below, ChannelLayer) and isinstance(above, ChannelLayer):
                raise GeometryError(
                    f"adjacent channel layers {below.name!r} / {above.name!r} "
                    "are not supported (no solid interface between them)"
                )

    def _node_ids(self, layer_index: int) -> np.ndarray:
        """Global node ids of one layer, shape (nrows, ncols)."""
        base = layer_index * self._cells_per_layer
        return base + np.arange(self._cells_per_layer).reshape(
            self.nrows, self.ncols
        )

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def _build_system(self) -> None:
        stack = self.stack
        w = stack.cell_width
        builder = ConductanceBuilder(self.n_nodes)
        rhs_static = np.zeros(self.n_nodes)

        for k, layer in enumerate(stack.layers):
            self._add_horizontal(builder, k, layer)
            if isinstance(layer, SourceLayer):
                ids = self._node_ids(k)
                rhs_static[ids.ravel()] += layer.power_map.ravel()

        for k in range(stack.n_layers - 1):
            self._add_vertical(builder, k)

        if self.top_bc is not None:
            h_amb, t_amb = self.top_bc
            if h_amb < 0:
                raise ThermalError(
                    f"ambient heat transfer coefficient must be >= 0, got {h_amb}"
                )
            top_ids = self._node_ids(stack.n_layers - 1).ravel()
            g = np.full(top_ids.shape, h_amb * w * w)
            builder.add_grounded(top_ids, g)
            rhs_static[top_ids] += g * t_amb

        specs = self._advection_specs()
        advection, rhs_adv = assemble_advection(
            self.n_nodes,
            specs,
            self.coolant.volumetric_heat_capacity,
            self.inlet_temperature,
            scheme=self.advection_scheme,
        )
        self._specs = specs
        self.system = LinearThermalSystem(
            builder.build(), advection, rhs_static, rhs_adv
        )

    def _add_horizontal(self, builder: ConductanceBuilder, k: int, layer) -> None:
        w = self.stack.cell_width
        ids = self._node_ids(k)
        if isinstance(layer, ChannelLayer):
            liq = layer.grid.liquid
            k_wall = layer.wall_material.thermal_conductivity
            h_c = layer.channel_height
            g_ss = k_wall * h_c  # k * (w h_c) / w
            g_conv = (
                h_conv(self.coolant, w, h_c, self.nusselt) * w * h_c
            )
            g_half = 2.0 * k_wall * h_c  # k * (w h_c) / (w / 2)
            g_sl = series_conductance(g_conv, g_half)
            g_ll = (
                self.coolant.thermal_conductivity * h_c
                if self.liquid_conduction
                else 0.0
            )
            for a, b, liq_a, liq_b in _pair_slices(ids, liq):
                both_solid = ~liq_a & ~liq_b
                both_liquid = liq_a & liq_b
                mixed = ~both_solid & ~both_liquid
                g = np.where(
                    both_solid, g_ss, np.where(mixed, g_sl, g_ll)
                )
                builder.add_pairs(a.ravel(), b.ravel(), g.ravel())
        else:
            assert isinstance(layer, SolidLayer)
            g = layer.material.thermal_conductivity * layer.thickness
            a = ids[:, :-1].ravel()
            b = ids[:, 1:].ravel()
            builder.add_pairs(a, b, np.full(a.shape, g))
            a = ids[:-1, :].ravel()
            b = ids[1:, :].ravel()
            builder.add_pairs(a, b, np.full(a.shape, g))

    def _add_vertical(self, builder: ConductanceBuilder, k: int) -> None:
        stack = self.stack
        w = stack.cell_width
        area = w * w
        below = stack.layers[k]
        above = stack.layers[k + 1]
        ids_below = self._node_ids(k).ravel()
        ids_above = self._node_ids(k + 1).ravel()

        def solid_half(layer) -> float:
            material = (
                layer.wall_material
                if isinstance(layer, ChannelLayer)
                else layer.material
            )
            return slab_half_conductance(
                material.thermal_conductivity, area, layer.thickness
            )

        g_solid = series_conductance(solid_half(below), solid_half(above))

        liquid_mask = None
        if isinstance(below, ChannelLayer):
            liquid_mask = below.grid.liquid.ravel()
            channel = below
            solid_side = above
        elif isinstance(above, ChannelLayer):
            liquid_mask = above.grid.liquid.ravel()
            channel = above
            solid_side = below
        if liquid_mask is None:
            g = np.full(ids_below.shape, g_solid)
        else:
            g_conv = (
                h_conv(self.coolant, w, channel.channel_height, self.nusselt)
                * area
            )
            g_liquid = series_conductance(g_conv, solid_half(solid_side))
            g = np.where(liquid_mask, g_liquid, g_solid)
            if self.tsv_material is not None:
                g_tsv = series_conductance(
                    slab_half_conductance(
                        self.tsv_material.thermal_conductivity,
                        area,
                        channel.thickness,
                    ),
                    solid_half(solid_side),
                )
                tsv_mask = channel.grid.tsv_mask.ravel() & ~liquid_mask
                g = np.where(tsv_mask, g_tsv, g)
        builder.add_pairs(ids_below, ids_above, g)

    def _advection_specs(self) -> List[AdvectionSpec]:
        specs = []
        channel_indices = self.stack.channel_layer_indices()
        for layer_index, field in zip(channel_indices, self.flow_fields):
            ids = self._node_ids(layer_index)
            grid = self.stack.layers[layer_index].grid
            cells = list(grid.liquid_cells())
            rows = np.array([r for r, _ in cells], dtype=np.int64)
            cols = np.array([c for _, c in cells], dtype=np.int64)
            node_ids = ids[rows, cols]
            unit = field.at_pressure(1.0)
            pair_nodes = node_ids[unit.edge_cells]
            specs.append(
                AdvectionSpec(
                    pair_nodes=pair_nodes,
                    pair_flows=unit.edge_flows,
                    node_ids=node_ids,
                    inlet_flows=unit.inlet_flows,
                    outlet_flows=unit.outlet_flows,
                )
            )
        return specs

    # ------------------------------------------------------------------
    # Solve
    # ------------------------------------------------------------------

    def solve(self, p_sys: float, exact: bool = False) -> ThermalResult:
        """Steady temperatures at system pressure drop ``p_sys`` (Pa).

        ``exact=True`` bypasses the incremental solver path (final scoring).
        """
        with telemetry.span("thermal.rc4.solve", cells=self.n_nodes):
            temperatures = corrupt(
                SITE_THERMAL_RC4, self.system.solve(p_sys, exact=exact)
            )
            if not np.all(np.isfinite(temperatures)):
                raise ThermalError(
                    "4RM solve produced non-finite temperatures"
                )
            return self._package(p_sys, temperatures)

    def node_capacitances(self) -> np.ndarray:
        """Heat capacity of every thermal node in J/K (transient extension)."""
        w = self.stack.cell_width
        area = w * w
        caps = np.zeros(self.n_nodes)
        for k, layer in enumerate(self.stack.layers):
            ids = self._node_ids(k).ravel()
            if isinstance(layer, ChannelLayer):
                volume = area * layer.channel_height
                per_cell = np.where(
                    layer.grid.liquid.ravel(),
                    volume * self.coolant.volumetric_heat_capacity,
                    volume * layer.wall_material.volumetric_heat_capacity,
                )
            else:
                per_cell = np.full(
                    ids.shape,
                    area
                    * layer.thickness
                    * layer.material.volumetric_heat_capacity,
                )
            caps[ids] = per_cell
        return caps

    def _package(self, p_sys: float, temperatures: np.ndarray) -> ThermalResult:
        stack = self.stack
        fields = []
        liquid_fields = {}
        for k, layer in enumerate(stack.layers):
            field = temperatures[self._node_ids(k).ravel()].reshape(
                self.nrows, self.ncols
            )
            fields.append(field)
            if isinstance(layer, ChannelLayer):
                liquid_fields[k] = np.where(layer.grid.liquid, field, np.nan)
        q_sys = sum(f.q_sys(p_sys) for f in self.flow_fields)
        removed = 0.0
        c_v = self.coolant.volumetric_heat_capacity
        for spec in self._specs:
            t_nodes = temperatures[spec.node_ids]
            removed += c_v * p_sys * float(
                np.dot(spec.outlet_flows, t_nodes)
                - spec.inlet_flows.sum() * self.inlet_temperature
            )
        return ThermalResult(
            p_sys=float(p_sys),
            q_sys=q_sys,
            w_pump=float(p_sys) * q_sys,
            layer_fields=fields,
            layer_names=[layer.name for layer in stack.layers],
            source_layer_indices=stack.source_layer_indices(),
            inlet_temperature=self.inlet_temperature,
            total_power=stack.total_power,
            liquid_fields=liquid_fields,
            coolant_heat_removed=removed,
        )


def _pair_slices(
    ids: np.ndarray, liq: np.ndarray
) -> "Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]":
    """Yield (ids_a, ids_b, liq_a, liq_b) for east and south neighbor pairs."""
    yield ids[:, :-1], ids[:, 1:], liq[:, :-1], liq[:, 1:]
    yield ids[:-1, :], ids[1:, :], liq[:-1, :], liq[1:, :]
