"""Run-time thermal management: pressure control under dynamic power.

The paper's future work proposes "combining cooling networks with run-time
thermal management techniques (e.g., DVFS and adjustable flow rates) to
handle dynamic die power".  This module implements that loop on top of the
transient extension: a controller observes the peak temperature at a control
period and adjusts the pump pressure; the plant integrates backward-Euler
between control decisions (LU factorizations are memoized per commanded
pressure, so revisited pump levels never re-factorize).

Two standard controllers are provided: a hysteresis (bang-bang) controller
switching between two pump levels, and a clamped proportional-integral
controller tracking a peak-temperature setpoint.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

import numpy as np
from scipy.sparse import diags

from .. import linalg
from ..constants import quantize_key
from ..errors import LinalgError, ThermalError
from .result import ThermalResult

#: Backward-Euler LU factorizations kept per controlled run.  A bang-bang
#: controller alternates between two pressures and a PI controller converges
#: onto a few, so a handful of slots makes re-commanded pressures free.
_CONTROL_LU_CACHE_SIZE = 8  #: [unit: 1]


class HysteresisController:
    """Bang-bang pump control with hysteresis.

    Runs the pump at ``p_low`` until the peak temperature exceeds
    ``t_high``, then at ``p_high`` until it drops below ``t_low``.
    """

    def __init__(
        self, p_low: float, p_high: float, t_low: float, t_high: float
    ) -> None:
        if not 0 < p_low <= p_high:
            raise ThermalError(
                f"need 0 < p_low <= p_high, got ({p_low}, {p_high})"
            )
        if not t_low < t_high:
            raise ThermalError(f"need t_low < t_high, got ({t_low}, {t_high})")
        self.p_low = float(p_low)
        self.p_high = float(p_high)
        self.t_low = float(t_low)
        self.t_high = float(t_high)
        self._boosted = False

    def __call__(self, t_max: float, p_current: float) -> float:
        if self._boosted:
            if t_max < self.t_low:
                self._boosted = False
        elif t_max > self.t_high:
            self._boosted = True
        return self.p_high if self._boosted else self.p_low


class PIController:
    """Clamped proportional-integral control of the pump pressure.

    Tracks ``T_max -> setpoint`` with gains in Pa/K; the output is clamped
    to ``[p_min, p_max]`` with integral anti-windup.
    """

    def __init__(
        self,
        setpoint: float,
        kp: float,
        ki: float,
        p_min: float,
        p_max: float,
        period: float,
    ) -> None:
        if not 0 < p_min < p_max:
            raise ThermalError(f"need 0 < p_min < p_max, got ({p_min}, {p_max})")
        if period <= 0:
            raise ThermalError(f"control period must be positive, got {period}")
        self.setpoint = float(setpoint)
        self.kp = float(kp)
        self.ki = float(ki)
        self.p_min = float(p_min)
        self.p_max = float(p_max)
        self.period = float(period)
        self._integral = 0.0

    def __call__(self, t_max: float, p_current: float) -> float:
        error = t_max - self.setpoint  # hotter than setpoint -> pump harder
        candidate = (
            p_current + self.kp * error + self.ki * self._integral
        )
        clamped = min(max(candidate, self.p_min), self.p_max)
        if clamped == candidate:  # anti-windup: integrate only unclamped
            self._integral += error * self.period
        return clamped


@dataclass
class ControlTrace:
    """Time series of a controlled transient run."""

    times: List[float]
    t_max: List[float]
    delta_t: List[float]
    pressures: List[float]
    #: Average pumping power over the run, W.
    mean_pumping_power: float
    #: Snapshots at the control instants.
    results: List[ThermalResult] = field(default_factory=list)

    @property
    def peak(self) -> float:
        """Highest peak temperature over the whole run."""
        return max(self.t_max)

    def time_above(self, threshold: float) -> float:
        """Total simulated time spent with ``T_max`` above ``threshold``."""
        total = 0.0
        for (t0, t1), value in zip(
            zip(self.times, self.times[1:]), self.t_max[1:]
        ):
            if value > threshold:
                total += t1 - t0
        return total


def run_controlled(
    steady,
    controller: Callable[[float, float], float],
    duration: float,
    control_period: float,
    dt: float,
    p_initial: float,
    power_profile: Optional[Callable[[float], float]] = None,
    store_results: bool = False,
) -> ControlTrace:
    """Closed-loop transient simulation with pump-pressure control.

    Args:
        steady: An :class:`~repro.thermal.rc2.RC2Simulator` or
            :class:`~repro.thermal.rc4.RC4Simulator` (its assembled matrices
            are reused; the flow/advection scales with the commanded
            pressure).
        controller: Called once per control period with
            ``(t_max, p_current)``; returns the commanded pressure in Pa.
        duration: Total simulated time, s.
        control_period: Time between controller invocations, s.
        dt: Backward-Euler step, s (must divide the control period).
        p_initial: Pump pressure before the first control decision, Pa.
        power_profile: Optional multiplier on the die power over time
            (models DVFS-driven dynamic power).
        store_results: Keep full thermal snapshots at control instants.

    Returns:
        A :class:`ControlTrace`.
    """
    if control_period <= 0 or dt <= 0 or duration <= 0:
        raise ThermalError("duration, control_period and dt must be positive")
    steps_per_period = int(round(control_period / dt))
    if steps_per_period < 1 or abs(steps_per_period * dt - control_period) > 1e-9:
        raise ThermalError(
            f"dt={dt} must divide the control period {control_period}"
        )
    n_periods = int(round(duration / control_period))
    if n_periods < 1:
        raise ThermalError("duration shorter than one control period")

    capacitances = steady.node_capacitances()
    c_over_dt = capacitances / dt
    rhs_power = steady.system.rhs_static
    state = np.full(steady.system.n_nodes, steady.inlet_temperature)

    p_current = float(p_initial)
    energy_pump = 0.0

    # Backward-Euler operator ``K + P A + C/dt`` factorized once per distinct
    # commanded pressure.  The capacitance diagonal never changes, so it is
    # assembled exactly once, outside the control loop.
    c_diag = diags(c_over_dt).tocsc()
    lu_cache: "OrderedDict[float, object]" = OrderedDict()

    def lu_for(pressure: float) -> Any:
        key = quantize_key(pressure)
        lu = lu_cache.get(key)
        if lu is None:
            matrix = steady.system.system_matrix(pressure)
            try:
                lu = linalg.factorize(matrix.tocsc() + c_diag)
            except LinalgError as exc:
                raise ThermalError(
                    f"backward-Euler operator is singular at commanded "
                    f"pressure {pressure}"
                ) from exc
            lu_cache[key] = lu
            while len(lu_cache) > _CONTROL_LU_CACHE_SIZE:
                lu_cache.popitem(last=False)
        else:
            lu_cache.move_to_end(key)
        return lu

    times = [0.0]
    result0 = steady._package(max(p_current, 1e-9), state.copy())
    t_maxes = [result0.t_max]
    delta_ts = [result0.delta_t]
    pressures = [p_current]
    results = [result0] if store_results else []

    time = 0.0
    for _ in range(n_periods):
        commanded = float(controller(t_maxes[-1], p_current))
        if commanded <= 0:
            raise ThermalError(
                f"controller commanded non-positive pressure {commanded}"
            )
        p_current = commanded
        lu = lu_for(p_current)
        rhs_adv = p_current * steady.system.rhs_advection
        for _ in range(steps_per_period):
            time += dt
            scale = 1.0 if power_profile is None else float(power_profile(time))
            state = lu.solve(c_over_dt * state + scale * rhs_power + rhs_adv)
        # Pumping power P^2 / R integrated over the period.
        q_unit = sum(f.q_sys(1.0) for f in steady.flow_fields)
        energy_pump += p_current * p_current * q_unit * control_period

        snapshot = steady._package(p_current, state.copy())
        times.append(time)
        t_maxes.append(snapshot.t_max)
        delta_ts.append(snapshot.delta_t)
        pressures.append(p_current)
        if store_results:
            results.append(snapshot)

    return ControlTrace(
        times=times,
        t_max=t_maxes,
        delta_t=delta_ts,
        pressures=pressures,
        mean_pumping_power=energy_pump / (n_periods * control_period),
        results=results,
    )
