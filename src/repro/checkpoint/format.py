"""The on-disk checkpoint format: header + CRC-validated pickle payload.

A checkpoint file is one ASCII JSON header line followed by a pickled
payload::

    {"crc32": ..., "magic": "repro-checkpoint", "payload_bytes": ...,
     "fingerprint": "...", "version": 1}\\n
    <pickle bytes>

The header carries everything needed to *reject* a file before a single
payload byte is interpreted:

* ``magic`` -- rules out arbitrary files handed to ``--resume``;
* ``version`` -- schema version, bumped whenever the payload layout
  changes, so an old binary never misreads a new checkpoint (or vice
  versa);
* ``fingerprint`` -- hash of the run configuration (case, stages, problem,
  seed...); a checkpoint from a different setup must never silently seed a
  resume;
* ``payload_bytes`` + ``crc32`` -- length and CRC of the payload, so a
  truncated or bit-flipped file fails loudly.

Every rejection path raises a typed
:class:`~repro.errors.CheckpointError`.  Writes go through
:func:`repro.checkpoint.atomic.atomic_write_bytes`, so a crash mid-write
leaves the previous checkpoint intact.

This module is a sanctioned R4 error boundary (``repro-lint-scope:
error-boundary``): unpickling attacker- or corruption-shaped bytes can
raise nearly anything (``UnpicklingError``, ``EOFError``,
``AttributeError``...), and the one ``except Exception`` below exists to
translate all of it into :class:`~repro.errors.CheckpointError`.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import zlib
from pathlib import Path
from typing import Any, Union

from .. import profiling
from ..errors import CheckpointError
from .atomic import atomic_write_bytes

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "fingerprint_of",
    "read_checkpoint",
    "write_checkpoint",
]

#: File-type marker of the header line.
CHECKPOINT_MAGIC = "repro-checkpoint"

#: Schema version of the pickled payload (bump on any layout change).
CHECKPOINT_VERSION = 1


def fingerprint_of(**fields: Any) -> str:
    """A stable hex fingerprint of a run configuration.

    Fields are rendered by ``repr`` in sorted key order and hashed with
    SHA-256; any field whose ``repr`` is stable across processes (ints,
    strings, tuples, dataclasses with value fields) fingerprints reliably.
    """
    canonical = ";".join(
        f"{key}={fields[key]!r}" for key in sorted(fields)
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_checkpoint(
    path: Union[str, Path], payload: Any, fingerprint: str
) -> Path:
    """Serialize ``payload`` and atomically write a checkpoint file."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = json.dumps(
        {
            "magic": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "payload_bytes": len(blob),
            "crc32": zlib.crc32(blob),
        },
        sort_keys=True,
    )
    final = atomic_write_bytes(path, header.encode("ascii") + b"\n" + blob)
    profiling.increment("checkpoint.saves")
    return final


def read_checkpoint(path: Union[str, Path], fingerprint: str) -> Any:
    """Validate and deserialize a checkpoint written by :func:`write_checkpoint`.

    Raises:
        CheckpointError: missing/unreadable file, bad magic, schema version
            skew, fingerprint mismatch, payload length mismatch (partial
            write), CRC mismatch (corruption), or an unpicklable payload.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc

    header_line, separator, blob = raw.partition(b"\n")
    if not separator:
        raise CheckpointError(
            f"{path}: not a checkpoint (no header/payload separator)"
        )
    try:
        header = json.loads(header_line.decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"{path}: not a checkpoint (unparsable header)"
        ) from exc
    if not isinstance(header, dict) or header.get("magic") != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path}: not a repro checkpoint file")
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: schema version {version!r} does not match this "
            f"build's version {CHECKPOINT_VERSION}; re-run without --resume"
        )
    if header.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"{path}: checkpoint is from a different run setup (case, "
            f"stages, problem, seed, or batch shape changed); refusing to "
            f"resume from mismatched state"
        )
    if header.get("payload_bytes") != len(blob):
        raise CheckpointError(
            f"{path}: payload is {len(blob)} bytes but the header recorded "
            f"{header.get('payload_bytes')!r} (partial or truncated write)"
        )
    if header.get("crc32") != zlib.crc32(blob):
        raise CheckpointError(
            f"{path}: payload CRC mismatch (corrupted checkpoint)"
        )
    try:
        payload = pickle.loads(blob)
    except Exception as exc:  # the sanctioned corruption-translation boundary
        raise CheckpointError(
            f"{path}: payload passed CRC but failed to deserialize: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    profiling.increment("checkpoint.loads")
    return payload
