"""Crash-safe checkpoint/resume for the staged SA design flow.

The longest workload in the repo -- a full ``problem1``/``problem2`` sweep
over flow directions, stages, and SA rounds -- survives process death
through this package: the runner persists a versioned, CRC-validated,
atomically-replaced checkpoint at every round boundary and every few SA
iterations, and ``resume=True`` restores it *bitwise* (identical final
score, plan, and simulation count), because the SA engine's
``np.random.Generator`` bit-generator state and every evaluator cache ride
along in the payload.

Layers, bottom to top:

* :mod:`~repro.checkpoint.atomic` -- temp-file + fsync + ``os.replace``
  writes; the sanctioned primitive behind every run artifact (lint R6).
* :mod:`~repro.checkpoint.format` -- header + pickle file format with
  magic/version/fingerprint/CRC validation; every rejection is a typed
  :class:`~repro.errors.CheckpointError`.
* :mod:`~repro.checkpoint.state` -- the resume-state dataclasses mirroring
  Algorithm 1's direction/stage/round/iteration nesting.
* :mod:`~repro.checkpoint.manager` -- cadence + interrupt policy
  (:class:`CheckpointManager`), used by ``repro.optimize.runner`` and the
  :mod:`repro.cli` run supervisor.
"""

from ..errors import CheckpointError, RunInterrupted
from .atomic import (
    append_jsonl,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from .format import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    fingerprint_of,
    read_checkpoint,
    write_checkpoint,
)
from .manager import CHECKPOINT_FILENAME, CheckpointManager
from .state import (
    DirectionCursor,
    DirectionRecord,
    EvaluatorState,
    RunState,
    StageCursor,
)

__all__ = [
    "CHECKPOINT_FILENAME",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointManager",
    "DirectionCursor",
    "DirectionRecord",
    "EvaluatorState",
    "RunInterrupted",
    "RunState",
    "StageCursor",
    "append_jsonl",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "fingerprint_of",
    "read_checkpoint",
    "write_checkpoint",
]
