"""Crash-safe file writes: the one sanctioned persistence primitive.

Every run artifact in the repo -- checkpoints, ``BENCH_*.json`` payloads,
anything a crash mid-write could truncate -- goes through
:func:`atomic_write_bytes`: serialize fully in memory, write to a temp file
in the *destination directory* (same filesystem, so the rename is atomic),
flush + ``fsync`` the file, then ``os.replace`` onto the final name and
``fsync`` the directory so the rename itself survives power loss.  A reader
therefore sees either the previous complete file or the new complete file,
never a partial one.

The R6 lint rule (``repro.lint``, non-atomic persistence) flags
``json.dump`` / ``pickle.dump`` / ``write_text(json.dumps(...))`` outside
this module's boundary, so new artifact writers cannot quietly regress to
truncatable writes.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

__all__ = [
    "append_jsonl",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
]


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry (best effort; not supported everywhere)."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms that cannot open directories
    try:
        os.fsync(dir_fd)
    except OSError:
        pass  # the data fsync already happened; rename durability is best effort
    finally:
        os.close(dir_fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically; returns the final path.

    The temp file lives next to the destination (``<name>.<rand>.tmp``) so
    ``os.replace`` never crosses a filesystem boundary.  On any failure the
    temp file is removed and the destination is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    _fsync_directory(path.parent)
    return path


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Atomic :func:`atomic_write_bytes` for UTF-8 text."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: Union[str, Path], payload: Any, indent: int = 2) -> Path:
    """Serialize ``payload`` as sorted-key JSON and write it atomically.

    The serialization happens fully in memory first, so a payload that is
    not JSON-serializable fails before anything touches the filesystem.
    """
    return atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    )


def append_jsonl(path: Union[str, Path], record: Any, fsync: bool = True) -> Path:
    """Append one JSON record as a single line to ``path``; returns the path.

    The crash-safe append counterpart to :func:`atomic_write_bytes` for
    streaming artifacts (run-event logs): the record is serialized fully in
    memory first, emitted in one ``write`` call in ``O_APPEND`` mode, then
    flushed (and ``fsync``'d unless ``fsync=False``).  A crash can therefore
    only tear the *last* line, which JSONL readers skip; every earlier
    record stays intact.  Pass ``fsync=False`` for high-rate streams where
    per-record durability is not worth a disk flush.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    with open(path, "ab") as handle:
        handle.write(line.encode("utf-8"))
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    return path
