"""The run-side checkpoint policy: where, how often, and when to stop.

A :class:`CheckpointManager` owns one checkpoint file (``run.ckpt`` inside
the chosen directory), the run fingerprint it must match, the iteration
cadence, and the cooperative-interrupt contract with the run supervisor:

* **Boundaries always persist** -- the runner calls :meth:`save` after
  every SA round, stage, and direction.
* **Iterations persist on cadence** -- the SA engines call
  :meth:`maybe_save` once per iteration with a *factory* so the (cheap but
  not free) state snapshot is only built when a write is actually due.
* **Interrupts flush first** -- when the supervisor's ``interrupt_check``
  reports a stop request, the next hook writes a final checkpoint and then
  raises :class:`~repro.errors.RunInterrupted`, so the process always exits
  with its latest state on disk.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Optional, Union

from ..constants import CHECKPOINT_EVERY_ITERATIONS
from ..errors import CheckpointError, RunInterrupted
from ..telemetry import span
from .format import read_checkpoint, write_checkpoint
from .state import RunState

__all__ = ["CHECKPOINT_FILENAME", "CheckpointManager"]

#: Name of the checkpoint file inside the checkpoint directory.
CHECKPOINT_FILENAME = "run.ckpt"


class CheckpointManager:
    """Policy wrapper around one checkpoint file.

    Args:
        directory: Directory holding the checkpoint (created on first save).
        fingerprint: Run-configuration fingerprint every save stamps and
            every load verifies (see :func:`repro.checkpoint.fingerprint_of`).
        every_iterations: Iteration cadence for :meth:`maybe_save`; ``None``
            uses :data:`~repro.constants.CHECKPOINT_EVERY_ITERATIONS`.
        interrupt_check: Optional zero-argument callable polled after every
            persisted hook; when it returns True the manager raises
            :class:`~repro.errors.RunInterrupted` (after flushing).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fingerprint: str,
        every_iterations: Optional[int] = None,
        interrupt_check: Optional[Callable[[], bool]] = None,
    ) -> None:
        if every_iterations is not None and every_iterations < 1:
            raise CheckpointError(
                f"checkpoint cadence must be >= 1 iteration, "
                f"got {every_iterations}"
            )
        self.directory = Path(directory)
        self.path = self.directory / CHECKPOINT_FILENAME
        self.fingerprint = fingerprint
        self.every_iterations = (
            CHECKPOINT_EVERY_ITERATIONS
            if every_iterations is None
            else int(every_iterations)
        )
        self.interrupt_check = interrupt_check
        self._iterations_since_save = 0

    # -- loading -------------------------------------------------------

    def load(self) -> Optional[RunState]:
        """The validated :class:`RunState` on disk, or ``None`` when absent.

        A missing file means "fresh run" (so ``--resume`` is safe to pass
        unconditionally); anything present but invalid raises
        :class:`~repro.errors.CheckpointError`.
        """
        if not self.path.exists():
            return None
        with span("checkpoint.load"):
            state = read_checkpoint(self.path, self.fingerprint)
        if not isinstance(state, RunState):
            raise CheckpointError(
                f"{self.path}: payload is {type(state).__name__}, "
                f"expected RunState"
            )
        return state

    # -- saving --------------------------------------------------------

    def save(self, state: RunState) -> None:
        """Persist ``state`` now (boundary checkpoint), then honor interrupts."""
        with span("checkpoint.save"):
            write_checkpoint(self.path, state, self.fingerprint)
        self._iterations_since_save = 0
        self._raise_if_interrupted()

    def maybe_save(self, state_factory: Callable[[], RunState]) -> None:
        """Iteration hook: persist on cadence or when a stop is requested.

        ``state_factory`` is only invoked when a write actually happens.
        """
        self._iterations_since_save += 1
        due = self._iterations_since_save >= self.every_iterations
        if due or self._interrupt_requested():
            self.save(state_factory())

    # -- interrupts ----------------------------------------------------

    def _interrupt_requested(self) -> bool:
        return self.interrupt_check is not None and bool(self.interrupt_check())

    def _raise_if_interrupted(self) -> None:
        if self._interrupt_requested():
            raise RunInterrupted(
                f"run stopped on request; resume from {self.path}",
                checkpoint_path=str(self.path),
            )
