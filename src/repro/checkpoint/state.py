"""Resume-state dataclasses for the staged SA design flow.

The hierarchy mirrors the nesting of Algorithm 1 exactly::

    RunState                      one run_staged_flow invocation
    +-- completed: [DirectionRecord]   finished flow directions
    +-- direction: DirectionCursor     the direction in flight
        +-- reports: [StageReport]     finished stages of that direction
        +-- stage: StageCursor         the stage in flight
            +-- round_*: per-round bests of finished rounds
            +-- sa: SACursor           the SA round in flight (engine state
                                       incl. the np.random bit-generator)

Everything here is a plain picklable dataclass; the SA engine's cursor
(:class:`repro.optimize.annealing.SACursor`) is carried opaquely so this
module never imports the optimize layer.  All evaluator-side caches and
counters ride along so a resumed run replays *bitwise* -- same costs, same
plans, and the same simulation counts (a resumed evaluation hits the
restored cache exactly where the uninterrupted run hit its live one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "DirectionCursor",
    "DirectionRecord",
    "EvaluatorState",
    "RunState",
    "StageCursor",
]


@dataclass
class EvaluatorState:
    """Snapshot of one ``_CandidateEvaluator`` (cache + counters).

    Attributes:
        cache: params-bytes -> cost memo.
        simulations: Thermal simulations the evaluator has spent.
        group_counter: Problem 2 grouped-evaluation position.
        group_pressure: Problem 2 group leader's donated pressure, Pa.
    """

    cache: Dict[bytes, float] = field(default_factory=dict)
    simulations: int = 0
    group_counter: int = 0
    group_pressure: Optional[float] = None


@dataclass
class StageCursor:
    """Progress inside one stage of one direction.

    Attributes:
        stage_index: Index into the stage schedule.
        entry_params: Tree parameters the stage started from.
        round_index: Next SA round to run (rounds before it are complete).
        round_states / round_costs / round_histories: Per-round bests of the
            completed rounds, in round order.
        evaluator: Serial-path evaluator snapshot (shared across rounds).
        batch_evals: Candidate evaluations spent by completed rounds'
            batch evaluators (batch mode only).
        active_batch_cache: The in-flight round's batch cost cache
            (batch mode only; ``None`` between rounds).
        active_batch_evals: Evaluations spent by the in-flight round's
            batch evaluator.
        sa: Mid-round SA engine cursor (``None`` at a round boundary).
    """

    stage_index: int
    entry_params: Any
    round_index: int = 0
    round_states: List[Any] = field(default_factory=list)
    round_costs: List[float] = field(default_factory=list)
    round_histories: List[Any] = field(default_factory=list)
    evaluator: EvaluatorState = field(default_factory=EvaluatorState)
    batch_evals: int = 0
    active_batch_cache: Optional[Dict[bytes, float]] = None
    active_batch_evals: int = 0
    sa: Optional[Any] = None


@dataclass
class DirectionCursor:
    """Progress inside one global flow direction.

    Attributes:
        d_index: Index into the ``directions`` sequence (not the direction
            value -- resumes must line up positionally with the seeds).
        fixed_pressure: Stage-1 reference pressure, Pa (``None`` when the
            schedule has no fixed-pressure stage).
        params: Tree parameters entering stage ``stage_index``.
        stage_index: Next stage to run.
        reports: ``StageReport`` objects of the completed stages.
        sims_so_far: Simulations accumulated in this direction up to the
            start of stage ``stage_index`` (reference pressure + completed
            stages + their re-scoring).
        stage: In-flight stage cursor (``None`` at a stage boundary).
    """

    d_index: int
    fixed_pressure: Optional[float]
    params: Any
    stage_index: int = 0
    reports: List[Any] = field(default_factory=list)
    sims_so_far: int = 0
    stage: Optional[StageCursor] = None


@dataclass
class DirectionRecord:
    """One finished direction: its index and full ``OptimizationResult``."""

    d_index: int
    result: Any


@dataclass
class RunState:
    """Everything ``run_staged_flow`` needs to resume bitwise.

    Attributes:
        completed: Finished directions, in completion order.
        direction: The direction in flight (``None`` between directions).
        profiling: ``repro.profiling`` snapshot at save time; merged back
            into the (fresh) process profiler on resume so counters keep
            their run-level meaning across the crash.
    """

    completed: List[DirectionRecord] = field(default_factory=list)
    direction: Optional[DirectionCursor] = None
    profiling: Dict[str, Any] = field(default_factory=dict)

    def completed_indices(self) -> List[int]:
        """The ``d_index`` values of the finished directions."""
        return [record.d_index for record in self.completed]
