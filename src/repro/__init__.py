"""repro: liquid cooling network design for 3D ICs.

A full reproduction of Chen et al., "Minimizing Thermal Gradient and Pumping
Power in 3D IC Liquid Cooling Network Design" (DAC 2017): thermal modeling of
arbitrary-topology microchannel cooling networks (fast 2RM and reference 4RM
simulators), the hierarchical tree-like network structure, and the staged
simulated-annealing design flows for pumping-power minimization (Problem 1,
the ICCAD 2015 Contest formulation) and thermal-gradient minimization
(Problem 2).

Quickstart::

    from repro import iccad2015, RC2Simulator

    case = iccad2015.load_case(1, scale=0.5)
    stack = case.stack_with_network(case.baseline_network())
    sim = RC2Simulator(stack, case.coolant, tile_size=4)
    result = sim.solve(p_sys=20e3)
    print(result.summary())
"""

from . import analysis, constants, cooling, iccad2015, materials, networks, optimize, verify
from .errors import (
    BenchmarkError,
    DesignRuleError,
    FlowError,
    GeometryError,
    InfeasibleError,
    ReproError,
    SearchError,
    ThermalError,
)
from .flow import FlowField, FlowSolution, solve_flow
from .geometry import (
    ChannelGrid,
    ChannelLayer,
    Port,
    PortKind,
    Rect,
    Side,
    SolidLayer,
    SourceLayer,
    Stack,
    build_contest_stack,
    check_design_rules,
)
from .materials import WATER, Coolant, Solid
from .thermal import (
    RC2Simulator,
    RC4Simulator,
    ThermalResult,
    TransientSimulator,
)

__version__ = "1.0.0"

__all__ = [
    "BenchmarkError",
    "ChannelGrid",
    "ChannelLayer",
    "Coolant",
    "DesignRuleError",
    "FlowError",
    "FlowField",
    "FlowSolution",
    "GeometryError",
    "InfeasibleError",
    "Port",
    "PortKind",
    "RC2Simulator",
    "RC4Simulator",
    "Rect",
    "ReproError",
    "SearchError",
    "Side",
    "Solid",
    "SolidLayer",
    "SourceLayer",
    "Stack",
    "ThermalError",
    "ThermalResult",
    "TransientSimulator",
    "WATER",
    "analysis",
    "build_contest_stack",
    "check_design_rules",
    "constants",
    "cooling",
    "iccad2015",
    "materials",
    "networks",
    "optimize",
    "solve_flow",
    "verify",
    "__version__",
]
