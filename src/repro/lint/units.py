"""Unit algebra for the R1 (units) lint rule.

A *unit expression* is the tiny language used by ``[unit: ...]`` tags::

    Pa            W/(m K)         m^3/s        J/(m^3 K)
    Pa s          kg m^-1 s^-2    1            W/K

Grammar (whitespace and ``*`` both mean multiplication, ``/`` divides by the
single factor that follows it, ``^`` or ``**`` raise to an integer power)::

    expr   := factor { ("*" | "/" | " ") factor }
    factor := atom [ ("^" | "**") signed_int ]
    atom   := NAME | "1" | "(" expr ")"

Units are compared *dimensionally*: derived SI units (W, J, N, Pa, Hz) are
expanded onto the base dimensions (m, kg, s, K, A, mol, cd) before equality
is tested, so ``W/(m K)`` and ``kg m s^-3 K^-1`` are the same unit.  Symbols
the table does not know (e.g. ``cell``) act as opaque base dimensions of
their own, which keeps counts and other bookkeeping quantities from mixing
with physical ones.
"""

from __future__ import annotations

import re
from types import MappingProxyType
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..errors import LintError

#: Base SI dimensions (plus anything unknown, which becomes its own base).
BASE_DIMENSIONS = ("m", "kg", "s", "K", "A", "mol", "cd")

#: Derived symbols expanded to base-dimension exponent maps.
DERIVED: Mapping[str, Dict[str, int]] = MappingProxyType({
    "Hz": {"s": -1},
    "N": {"kg": 1, "m": 1, "s": -2},
    "Pa": {"kg": 1, "m": -1, "s": -2},
    "J": {"kg": 1, "m": 2, "s": -2},
    "W": {"kg": 1, "m": 2, "s": -3},
    "V": {"kg": 1, "m": 2, "s": -3, "A": -1},
    "C": {"A": 1, "s": 1},
})

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<int>[+-]?\d+)"
    r"|(?P<pow>\^|\*\*)"
    r"|(?P<op>[*/()])"
    r")"
)


class Unit:
    """An immutable map of base dimension -> integer exponent."""

    __slots__ = ("dims", "_key")

    def __init__(self, dims: Dict[str, int]) -> None:
        self.dims: Dict[str, int] = {k: v for k, v in dims.items() if v != 0}
        self._key: Tuple[Tuple[str, int], ...] = tuple(
            sorted(self.dims.items())
        )

    def __mul__(self, other: "Unit") -> "Unit":
        merged = dict(self.dims)
        for sym, exp in other.dims.items():
            merged[sym] = merged.get(sym, 0) + exp
        return Unit(merged)

    def __truediv__(self, other: "Unit") -> "Unit":
        return self * other ** -1

    def __pow__(self, exponent: int) -> "Unit":
        return Unit({sym: exp * exponent for sym, exp in self.dims.items()})

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Unit) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    @property
    def dimensionless(self) -> bool:
        """True for the empty (pure-number) unit."""
        return not self.dims

    def __repr__(self) -> str:
        return f"Unit({format_unit(self)!r})"


DIMENSIONLESS = Unit({})


def _expand(symbol: str) -> Unit:
    """One symbol as a base-dimension unit (derived symbols expanded)."""
    if symbol in DERIVED:
        return Unit(DERIVED[symbol])
    return Unit({symbol: 1})


def _tokenize(text: str) -> Iterator[Tuple[str, str]]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            raise LintError(
                f"bad unit expression {text!r}: cannot tokenize at {text[pos:]!r}"
            )
        pos = match.end()
        for kind in ("name", "int", "pow", "op"):
            value = match.group(kind)
            if value is not None:
                yield kind, value
                break


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens: List[Tuple[str, str]] = list(_tokenize(text))
        self.pos = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def take(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise LintError(f"bad unit expression {self.text!r}: truncated")
        self.pos += 1
        return token

    def parse(self) -> Unit:
        unit = self.expr()
        trailing = self.peek()
        if trailing is not None:
            raise LintError(
                f"bad unit expression {self.text!r}: trailing {trailing[1]!r}"
            )
        return unit

    def expr(self) -> Unit:
        unit = self.factor()
        while True:
            token = self.peek()
            if token is None:
                return unit
            kind, value = token
            if kind == "op" and value == "*":
                self.take()
                unit = unit * self.factor()
            elif kind == "op" and value == "/":
                self.take()
                unit = unit / self.factor()
            elif kind in ("name", "int") or (kind == "op" and value == "("):
                unit = unit * self.factor()  # implicit multiplication
            else:
                return unit

    def factor(self) -> Unit:
        unit = self.atom()
        token = self.peek()
        if token is not None and token[0] == "pow":
            self.take()
            kind, value = self.take()
            if kind != "int":
                raise LintError(
                    f"bad unit expression {self.text!r}: exponent must be an "
                    f"integer, got {value!r}"
                )
            unit = unit ** int(value)
        return unit

    def atom(self) -> Unit:
        kind, value = self.take()
        if kind == "name":
            return _expand(value)
        if kind == "int":
            if value in ("1", "+1"):
                return DIMENSIONLESS
            raise LintError(
                f"bad unit expression {self.text!r}: the only bare number "
                f"allowed is 1 (dimensionless), got {value!r}"
            )
        if kind == "op" and value == "(":
            unit = self.expr()
            token = self.take()
            if token != ("op", ")"):
                raise LintError(
                    f"bad unit expression {self.text!r}: unbalanced parentheses"
                )
            return unit
        raise LintError(
            f"bad unit expression {self.text!r}: unexpected {value!r}"
        )


def parse_unit(text: str) -> Unit:
    """Parse a ``[unit: ...]`` tag body into a :class:`Unit`.

    Raises:
        LintError: On a malformed expression.
    """
    text = text.strip()
    if not text:
        raise LintError("empty unit expression")
    return _Parser(text).parse()


def format_unit(unit: Unit) -> str:
    """Render a unit in canonical base-dimension form (``kg m^-1 s^-2``)."""
    if unit.dimensionless:
        return "1"
    known = [d for d in BASE_DIMENSIONS if d in unit.dims]
    other = sorted(set(unit.dims) - set(BASE_DIMENSIONS))
    parts = []
    for sym in known + other:
        exp = unit.dims[sym]
        parts.append(sym if exp == 1 else f"{sym}^{exp}")
    return " ".join(parts)


def compatible(a: Unit, b: Unit) -> bool:
    """Whether two quantities may be added/subtracted/compared."""
    return a == b
