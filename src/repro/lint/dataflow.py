"""Reusable forward-dataflow framework for the whole-program lint rules.

:class:`ForwardDataflow` walks one function (or module) body in statement
order carrying an environment of ``local name -> abstract value``.  The
*meaning* of a value is supplied by the subclass -- a physical unit for the
R8 unit-inference rule, a taint set for the R9 determinism rule -- through
a small set of evaluation hooks; the base class owns everything shape-
related:

* statement traversal (assignments, ``if``/``for``/``while``/``try``/
  ``with``, returns, nested defs) with per-branch environment copies that
  are *joined* back together, so a name bound to different values on two
  paths becomes unknown rather than wrongly certain;
* loop bodies walked once and joined against the pre-loop environment
  (a second iteration can only make values less precise, and ``join``
  already accounts for that);
* exhaustive expression visiting: every expression in every statement is
  evaluated, so subclass hooks fire for calls and subscripts buried in
  arguments, conditions, and comprehensions, not just on the right-hand
  side of assignments.

``None`` is the universal *unknown* ("top") value: inference never guesses.
The default :meth:`join` keeps a value only when both branches agree.

The framework is deliberately path-insensitive and runs in one pass per
function -- the precision sweet spot for a lint (no fixpoint iteration,
no false certainty), while still being honest about control flow.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Generic, List, Optional, TypeVar

V = TypeVar("V")

#: Environment type: local name -> abstract value (``None`` = unknown).
Env = Dict[str, Optional[Any]]


class ForwardDataflow(Generic[V]):
    """Single-pass forward dataflow over one body, parameterized by hooks."""

    def __init__(self) -> None:
        self.env: Dict[str, Optional[V]] = {}

    # -- subclass hooks: values ------------------------------------------

    def join(self, a: Optional[V], b: Optional[V]) -> Optional[V]:
        """Merge two branch values; default keeps only agreement."""
        return a if a == b else None

    def eval_constant(self, node: ast.Constant) -> Optional[V]:
        """Value of a literal constant."""
        return None

    def eval_name(self, node: ast.Name) -> Optional[V]:
        """Value of a name not bound in the local environment."""
        return None

    def eval_attribute(
        self, node: ast.Attribute, value: Optional[V]
    ) -> Optional[V]:
        """Value of ``base.attr`` given the base's value."""
        return None

    def eval_call(
        self, node: ast.Call, args: List[Optional[V]]
    ) -> Optional[V]:
        """Value of a call given its positional-argument values.

        Keyword-argument values are evaluated by the engine before this
        hook runs (so source/sink hooks fire inside them); subclasses that
        need them can re-evaluate via :meth:`eval`, which is cheap.
        """
        return None

    def eval_binop(
        self, node: ast.BinOp, left: Optional[V], right: Optional[V]
    ) -> Optional[V]:
        """Value of a binary operation given operand values."""
        return None

    def eval_unaryop(
        self, node: ast.UnaryOp, operand: Optional[V]
    ) -> Optional[V]:
        """Value of a unary operation; default passes +x/-x through."""
        if isinstance(node.op, (ast.UAdd, ast.USub)):
            return operand
        return None

    def eval_subscript(
        self, node: ast.Subscript, value: Optional[V], key: Optional[V]
    ) -> Optional[V]:
        """Value of ``base[key]`` given base and key values."""
        return None

    def eval_display(
        self, node: ast.expr, elements: List[Optional[V]]
    ) -> Optional[V]:
        """Value of a list/tuple/set/dict display given element values."""
        return None

    def eval_comprehension(
        self, node: ast.expr, element: Optional[V]
    ) -> Optional[V]:
        """Value of a comprehension given its element expression's value."""
        return None

    def eval_ifexp(self, node: ast.IfExp) -> Optional[V]:
        """Value of a conditional expression (branches joined)."""
        return self.join(self.eval(node.body), self.eval(node.orelse))

    # -- subclass hooks: events ------------------------------------------

    def iter_element(
        self, node: ast.expr, iterable: Optional[V]
    ) -> Optional[V]:
        """Value bound to a loop target iterating over ``iterable``."""
        return None

    def on_assign(
        self, name: str, value: Optional[V], node: ast.stmt
    ) -> Optional[V]:
        """Filter the value bound by an assignment (default: unchanged)."""
        return value

    def on_return(self, node: ast.Return, value: Optional[V]) -> None:
        """A ``return`` statement was reached with the given value."""

    def on_compare(self, node: ast.Compare, values: List[Optional[V]]) -> None:
        """A comparison was evaluated (operand values in order)."""

    def enter_function(self, node: ast.FunctionDef) -> None:
        """A nested ``def`` was encountered (walked with a copied env)."""

    # -- engine: expressions ---------------------------------------------

    def eval(self, node: ast.expr) -> Optional[V]:
        """Evaluate one expression, firing hooks on every sub-expression."""
        if isinstance(node, ast.Constant):
            return self.eval_constant(node)
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load) and node.id in self.env:
                return self.env[node.id]
            return self.eval_name(node)
        if isinstance(node, ast.Attribute):
            base = self.eval(node.value)
            return self.eval_attribute(node, base)
        if isinstance(node, ast.Call):
            args = [self.eval(arg) for arg in node.args]
            for keyword in node.keywords:
                self.eval(keyword.value)
            if not isinstance(node.func, (ast.Name, ast.Attribute)):
                self.eval(node.func)
            elif isinstance(node.func, ast.Attribute):
                self.eval(node.func.value)
            return self.eval_call(node, args)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left)
            right = self.eval(node.right)
            return self.eval_binop(node, left, right)
        if isinstance(node, ast.UnaryOp):
            return self.eval_unaryop(node, self.eval(node.operand))
        if isinstance(node, ast.BoolOp):
            values = [self.eval(v) for v in node.values]
            merged = values[0]
            for value in values[1:]:
                merged = self.join(merged, value)
            return merged
        if isinstance(node, ast.Compare):
            values = [self.eval(node.left)]
            values.extend(self.eval(c) for c in node.comparators)
            self.on_compare(node, values)
            return None
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            key = self.eval(node.slice)
            return self.eval_subscript(node, base, key)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval_ifexp(node)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            elements = [self.eval(e) for e in node.elts]
            return self.eval_display(node, elements)
        if isinstance(node, ast.Dict):
            elements = []
            for key, value in zip(node.keys, node.values):
                if key is not None:
                    elements.append(self.eval(key))
                elements.append(self.eval(value))
            return self.eval_display(node, elements)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._eval_comprehension(node)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.eval(value.value)
            return None
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self._bind(node.target.id, value)
            return value
        if isinstance(node, ast.Lambda):
            return None
        # Anything else (await, yield, slices...): evaluate children for
        # hook coverage, yield unknown.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return None

    def _eval_comprehension(self, node: ast.expr) -> Optional[V]:
        saved = dict(self.env)
        for generator in node.generators:  # type: ignore[attr-defined]
            iterable = self.eval(generator.iter)
            element = self.iter_element(generator.iter, iterable)
            self._bind_target(generator.target, element, node)
            for condition in generator.ifs:
                self.eval(condition)
        if isinstance(node, ast.DictComp):
            self.eval(node.key)
            element = self.eval(node.value)
        else:
            element = self.eval(node.elt)  # type: ignore[attr-defined]
        self.env = saved
        return self.eval_comprehension(node, element)

    # -- engine: statements ----------------------------------------------

    def walk(self, body: List[ast.stmt]) -> None:
        """Walk a statement list in order, threading the environment."""
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(stmt, ast.FunctionDef):
                self.enter_function(stmt)
            return
        if isinstance(stmt, ast.ClassDef):
            for inner in stmt.body:
                self._walk_stmt(inner)
            return
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, value, stmt)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value)
                self._bind_target(stmt.target, value, stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id)
                synthetic = ast.BinOp(
                    left=stmt.target, op=stmt.op, right=stmt.value
                )
                ast.copy_location(synthetic, stmt)
                self._bind(
                    stmt.target.id,
                    self.on_assign(
                        stmt.target.id,
                        self.eval_binop(synthetic, current, value),
                        stmt,
                    ),
                )
            else:
                self.eval(stmt.target)
            return
        if isinstance(stmt, ast.Return):
            value = self.eval(stmt.value) if stmt.value is not None else None
            self.on_return(stmt, value)
            return
        if isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self._walk_branches([stmt.body, stmt.orelse])
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self.eval(stmt.iter)
            element = self.iter_element(stmt.iter, iterable)
            before = dict(self.env)
            self._bind_target(stmt.target, element, stmt)
            self.walk(stmt.body)
            self._join_env(before)
            self.walk(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self.eval(stmt.test)
            before = dict(self.env)
            self.walk(stmt.body)
            self._join_env(before)
            self.walk(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, value, stmt)
            self.walk(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            before = dict(self.env)
            self.walk(stmt.body)
            for handler in stmt.handlers:
                if handler.type is not None:
                    self.eval(handler.type)
                handler_env = dict(self.env)
                self.env = dict(before)
                self.walk(handler.body)
                self._join_env(handler_env)
            self.walk(stmt.orelse)
            self.walk(stmt.finalbody)
            return
        if isinstance(stmt, (ast.Expr, ast.Assert, ast.Raise, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return
        if isinstance(stmt, getattr(ast, "Match", ())):
            self.eval(stmt.subject)
            self._walk_branches([case.body for case in stmt.cases])
            return
        # Import/Global/Pass/Break/Continue and friends: nothing to evaluate,
        # but nested bodies (match statements on newer interpreters) still
        # need walking.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.eval(child)
            elif isinstance(child, ast.stmt):
                self._walk_stmt(child)

    def _walk_branches(self, branches: List[List[ast.stmt]]) -> None:
        before = dict(self.env)
        merged: Optional[Dict[str, Optional[V]]] = None
        for branch in branches:
            self.env = dict(before)
            self.walk(branch)
            if merged is None:
                merged = dict(self.env)
            else:
                keys = set(merged) | set(self.env)
                merged = {
                    key: self.join(merged.get(key), self.env.get(key))
                    for key in keys
                }
        self.env = merged if merged is not None else before

    def _join_env(self, other: Dict[str, Optional[V]]) -> None:
        keys = set(self.env) | set(other)
        self.env = {
            key: self.join(self.env.get(key), other.get(key)) for key in keys
        }

    def _bind_target(
        self, target: ast.expr, value: Optional[V], stmt: ast.stmt
    ) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, self.on_assign(target.id, value, stmt))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, None, stmt)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self.eval(target)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, None, stmt)

    def _bind(self, name: str, value: Optional[V]) -> None:
        self.env[name] = value
