"""Domain-aware static analysis for the repro codebase.

``python -m repro.lint [paths]`` runs five AST-based rules that encode the
invariants the physics and the solver-reuse layers depend on:

====  =================  ====================================================
R1    units              ``[unit: ...]`` tags on physics constants; no
                         adding/comparing incompatible units
R2    cache-keys         floats only key caches through ``quantize_key``
R3    pool-safety        worker-imported modules keep module state private,
                         immutable, or behind lifecycle functions
R4    error-discipline   ``ReproError`` subclasses everywhere; no broad
                         excepts outside ``repro.errors.crash_boundary``
R5    sparse-patterns    no densification, in-loop assembly, or
                         unmemoized factorizations
====  =================  ====================================================

See ``docs/STATIC_ANALYSIS.md`` for the conventions each rule enforces and
the suppression policy (``# repro-lint: disable=R<n>``, budgeted at zero).
The analyzer is stdlib-only and safe to run anywhere, including CI.
"""

from __future__ import annotations

from .core import (
    Analyzer,
    FileContext,
    Finding,
    LintReport,
    Rule,
    Suppression,
    all_rules,
    collect_files,
    register,
)
from .units import DIMENSIONLESS, Unit, compatible, format_unit, parse_unit

__all__ = [
    "Analyzer",
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "Suppression",
    "all_rules",
    "collect_files",
    "register",
    "Unit",
    "DIMENSIONLESS",
    "parse_unit",
    "format_unit",
    "compatible",
]
