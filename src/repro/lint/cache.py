"""Incremental result cache: re-analyze only what an edit can affect.

Every run still parses every file and rebuilds the project symbol table --
that is the cheap part, and resolution must always see the current world.
What the cache skips is the expensive part: running the rules over a file
whose findings *cannot have changed*.  A file's cache key is a content hash
covering everything its findings can depend on:

* the lint engine itself (every ``repro.lint`` source file) and the set of
  selected rules -- editing a rule invalidates everything;
* the file's own source;
* the source of every module in its transitive import closure within the
  analyzed set (unit tags, function signatures, and taint summaries all
  flow along import edges -- this is the call-graph-aware part, derived
  from :meth:`repro.lint.callgraph.CallGraph.dependency_closure`);
* whether the file currently sits in the worker-pool closure (R3 scoping
  is determined by *importers*, which the file's own closure cannot see);
* a global component: the project-wide attribute-unit table, the telemetry
  name registry (R7 reads it through importlib, outside the import graph),
  and the module roster, which any file may consult during resolution.

So editing ``flow/conductance.py`` re-analyzes it plus exactly the modules
whose closure contains it; a no-op rerun re-analyzes nothing.  Entries are
stored in one JSON file under ``.lint_cache/`` written through the
crash-safe :func:`repro.checkpoint.atomic.atomic_write_json` primitive; a
missing or corrupt cache silently degrades to a cold run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..checkpoint.atomic import atomic_write_json
from .core import FileContext, Finding
from .symbols import Project
from .units import format_unit

_VERSION = 1

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".lint_cache"


def _sha(*parts: str) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def engine_hash() -> str:
    """Content hash of the lint engine itself (every ``repro.lint`` file)."""
    root = Path(__file__).resolve().parent
    parts: List[str] = []
    for source in sorted(root.rglob("*.py")):
        parts.append(str(source.relative_to(root)))
        parts.append(source.read_text(encoding="utf-8"))
    return _sha(*parts)


class ResultCache:
    """Per-file finding cache keyed by dependency-aware content hashes."""

    def __init__(
        self,
        directory: Union[str, Path] = DEFAULT_CACHE_DIR,
        rule_ids: Sequence[str] = (),
    ) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "results.json"
        self._engine = _sha(engine_hash(), *sorted(rule_ids))
        self._entries: Dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return
        if (
            isinstance(payload, dict)
            and payload.get("version") == _VERSION
            and payload.get("engine") == self._engine
            and isinstance(payload.get("entries"), dict)
        ):
            self._entries = payload["entries"]

    # -- keys ------------------------------------------------------------

    def file_key(
        self,
        ctx: FileContext,
        project: Project,
        source_hashes: Dict[str, str],
    ) -> str:
        """The invalidation key of one file in the current project."""
        closure = project.callgraph.dependency_closure(ctx.module)
        closure_parts = [
            f"{module}={source_hashes.get(module, '')}"
            for module in sorted(closure)
        ]
        attribute_parts = [
            f"{attr}={'?' if unit is None else format_unit(unit)}"
            for attr, unit in sorted(
                project.attribute_units.items(), key=lambda kv: kv[0]
            )
        ]
        return _sha(
            self._engine,
            ctx.path,
            source_hashes.get(ctx.module, _sha(ctx.source)),
            "|".join(closure_parts),
            f"worker={project.in_worker_scope(ctx)}",
            "|".join(attribute_parts),
            # R7 consults the telemetry name registry through importlib,
            # outside the import graph -- hash it into every key.
            source_hashes.get("repro.telemetry.names", ""),
            "|".join(sorted(project.modules)),
        )

    # -- entries ---------------------------------------------------------

    def get(self, path: str, key: str) -> Optional[List[Finding]]:
        """Cached raw findings for ``path``, or ``None`` on miss."""
        entry = self._entries.get(path)
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        findings = entry.get("findings")
        if not isinstance(findings, list):
            return None
        try:
            return [Finding(**raw) for raw in findings]
        except TypeError:
            return None

    def put(self, path: str, key: str, findings: List[Finding]) -> None:
        """Record the raw findings of a freshly analyzed file."""
        self._entries[path] = {
            "key": key,
            "findings": [finding.__dict__ for finding in findings],
        }
        self._dirty = True

    def save(self) -> None:
        """Persist the cache (crash-safe; no-op when nothing changed)."""
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            self.path,
            {
                "version": _VERSION,
                "engine": self._engine,
                "entries": self._entries,
            },
        )
        self._dirty = False
