"""Project-wide symbol table shared by the lint rules.

Built once per analyzer run from every parsed file:

* unit tags of module-level constants (``[unit: ...]`` comments),
* function return-unit tags (``[unit-return: ...]`` docstrings) and
  parameter unit tags (``name: ... [unit: X]`` docstring lines),
* attribute unit tags from class docstrings (``attr: ... [unit: X]``),
* top-level function definitions (the nodes the call graph and the
  dataflow rules R8/R9 analyze),
* a static import graph over the analyzed modules, from which the
  *worker closure* -- every module transitively imported by
  ``repro.optimize.parallel`` -- is derived for the pool-safety rule.

A parameter or return tagged ``[unit: any]`` / ``[unit-return: any]`` is
*covered* but unit-polymorphic (e.g. ``quantize_key`` accepts a float in any
unit and returns it unchanged): it satisfies the R8 coverage check and is
skipped by the call-site compatibility check.

All resolution is purely syntactic; imports that leave the analyzed file set
(numpy, scipy, stdlib) simply resolve to nothing.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import LintError
from .core import FileContext, _UNIT_TAG_RE
from .units import Unit, parse_unit


def safe_parse_unit(tag: str) -> Optional[Unit]:
    """Parse a unit tag, returning ``None`` for invalid bodies.

    Docstring prose legitimately contains placeholder tags like
    ``[unit: ...]`` (the lint's own documentation does); the symbol table
    must not crash on them -- R1 separately validates the tags it requires.
    """
    try:
        return parse_unit(tag)
    except LintError:
        return None

#: Docstring line declaring a parameter's unit: ``name: ... [unit: X]``.
_PARAM_LINE_RE = re.compile(r"^(\w+)\s*:")

#: Tag body marking a deliberately unit-polymorphic parameter/return.
POLYMORPHIC_TAG = "any"

#: Module whose import closure defines the worker-safety (R3) scope.
WORKER_ROOT = "repro.optimize.parallel"

#: Modules whose numeric constants must carry unit tags (R1), by dotted
#: module name or package prefix.
UNIT_SCOPED_MODULES = ("repro.constants", "repro.materials")
UNIT_SCOPED_PACKAGES = ("repro.flow", "repro.thermal", "repro.cooling")


def _package_of(module: str, is_package: bool) -> str:
    """The package a module's relative imports resolve against."""
    if is_package:
        return module
    return module.rpartition(".")[0]


def resolve_import_from(
    module: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute dotted module targeted by a ``from ... import`` statement."""
    if node.level == 0:
        return node.module
    base = _package_of(module, is_package)
    for _ in range(node.level - 1):
        if not base:
            return None
        base = base.rpartition(".")[0]
    if node.module:
        return f"{base}.{node.module}" if base else node.module
    return base or None


class ModuleSymbols:
    """Per-module facts: unit tags and import bindings."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module = ctx.module
        self.is_package = ctx.path.endswith("__init__.py")
        #: Module-level constant name -> parsed unit.
        self.constant_units: Dict[str, Unit] = {}
        #: Function (top-level) name -> parsed return unit.
        self.return_units: Dict[str, Unit] = {}
        #: Functions whose return is tagged ``[unit-return: any]``.
        self.polymorphic_returns: Set[str] = set()
        #: Function name -> {param -> unit}; a ``None`` unit means the
        #: parameter is tagged ``[unit: any]`` (covered but polymorphic).
        self.param_units: Dict[str, Dict[str, Optional[Unit]]] = {}
        #: Top-level function definitions by name (R8/R9, call graph).
        self.functions: Dict[str, ast.FunctionDef] = {}
        #: Local alias -> (module, name) for ``from mod import name [as alias]``.
        self.imported_names: Dict[str, Tuple[str, str]] = {}
        #: Local alias -> module for ``import mod [as alias]``.
        self.imported_modules: Dict[str, str] = {}
        #: Modules this file mentions anywhere (for the import graph).
        self.imports: Set[str] = set()
        self._scan()

    def _scan(self) -> None:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports.add(alias.name)
                    if alias.asname:
                        self.imported_modules[alias.asname] = alias.name
                    else:
                        root = alias.name.partition(".")[0]
                        self.imported_modules[root] = root
            elif isinstance(node, ast.ImportFrom):
                target = resolve_import_from(
                    self.module, self.is_package, node
                )
                if target is None:
                    continue
                self.imports.add(target)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    # ``from pkg import sub`` may name a module; record both
                    # interpretations and let lookups pick whichever exists.
                    self.imports.add(f"{target}.{alias.name}")
                    self.imported_names[alias.asname or alias.name] = (
                        target,
                        alias.name,
                    )
        for node in self.ctx.tree.body:
            self._scan_toplevel(node)

    def _scan_toplevel(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                tag = self.ctx.unit_tag_for_line(node.lineno)
                if tag is not None:
                    self.constant_units[target.id] = parse_unit(tag)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            tag = self.ctx.unit_tag_for_line(node.lineno)
            if tag is not None:
                self.constant_units[node.target.id] = parse_unit(tag)
        elif isinstance(node, ast.FunctionDef):
            self.functions[node.name] = node
            tag = self.ctx.unit_return_tag(node)
            if tag is not None:
                if tag == POLYMORPHIC_TAG:
                    self.polymorphic_returns.add(node.name)
                else:
                    unit = safe_parse_unit(tag)
                    if unit is not None:
                        self.return_units[node.name] = unit
            params = _docstring_param_units(node)
            if params:
                self.param_units[node.name] = params
        elif isinstance(node, ast.AsyncFunctionDef):
            tag = self.ctx.unit_return_tag(node)
            if tag is not None and tag != POLYMORPHIC_TAG:
                unit = safe_parse_unit(tag)
                if unit is not None:
                    self.return_units[node.name] = unit


def _docstring_param_units(
    node: ast.FunctionDef,
) -> Dict[str, Optional[Unit]]:
    """``param -> unit`` tags from a function docstring.

    Any docstring line shaped like ``name: ... [unit: X]`` whose ``name`` is
    one of the function's parameters counts (the same convention class
    docstrings use for attributes); ``[unit: any]`` maps to ``None``.  A
    tag may sit on the entry's wrapped continuation lines (any following
    line indented deeper than the ``name:`` line), so Google-style entries
    need not cram the tag onto the first line.
    """
    doc = ast.get_docstring(node) or ""
    args = node.args
    param_names = {
        a.arg
        for a in args.posonlyargs + args.args + args.kwonlyargs
    }
    tags: Dict[str, Optional[Unit]] = {}
    lines = doc.splitlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        match = _PARAM_LINE_RE.match(stripped)
        if not match or match.group(1) not in param_names:
            continue
        indent = len(line) - len(line.lstrip())
        entry = [stripped]
        for next_line in lines[index + 1:]:
            if not next_line.strip():
                break
            next_indent = len(next_line) - len(next_line.lstrip())
            if next_indent <= indent:
                break
            entry.append(next_line.strip())
        unit = _UNIT_TAG_RE.search(" ".join(entry))
        if unit:
            body = unit.group(1).strip()
            if body == POLYMORPHIC_TAG:
                tags[match.group(1)] = None
            else:
                parsed = safe_parse_unit(body)
                if parsed is not None:
                    tags[match.group(1)] = parsed
    return tags


class Project:
    """Cross-file symbol table for one analyzer run."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.contexts = list(contexts)
        self.modules: Dict[str, ModuleSymbols] = {}
        for ctx in contexts:
            self.modules[ctx.module] = ModuleSymbols(ctx)
        self.attribute_units: Dict[str, Optional[Unit]] = {}
        self._collect_attribute_units()
        self.worker_modules: Set[str] = self._worker_closure()

    # -- units ----------------------------------------------------------

    def _collect_attribute_units(self) -> None:
        """Attribute tags from class docstrings, dropped on conflict."""
        for symbols in self.modules.values():
            for node in ast.walk(symbols.ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                for attr, tag in FileContext.attribute_unit_tags(
                    node
                ).items():
                    unit = parse_unit(tag)
                    if attr in self.attribute_units:
                        if self.attribute_units[attr] != unit:
                            self.attribute_units[attr] = None  # ambiguous
                    else:
                        self.attribute_units[attr] = unit

    def constant_unit(
        self, module: str, name: str
    ) -> Optional[Unit]:
        """Unit of a module-level constant, if tagged."""
        symbols = self.modules.get(module)
        if symbols is None:
            return None
        return symbols.constant_units.get(name)

    def return_unit(self, module: str, name: str) -> Optional[Unit]:
        """Return unit of a top-level function, if tagged."""
        symbols = self.modules.get(module)
        if symbols is None:
            return None
        return symbols.return_units.get(name)

    def attribute_unit(self, attr: str) -> Optional[Unit]:
        """Unambiguous unit of a tagged attribute name, if any."""
        return self.attribute_units.get(attr)

    def param_units(
        self, module: str, name: str
    ) -> Dict[str, Optional[Unit]]:
        """Declared parameter units of a top-level function (may be empty)."""
        symbols = self.modules.get(module)
        if symbols is None:
            return {}
        return symbols.param_units.get(name, {})

    def resolve_name(
        self, symbols: ModuleSymbols, name: str
    ) -> Optional[Tuple[str, str]]:
        """Resolve a local name to ``(module, symbol)``.

        Covers names defined in the module itself and ``from X import Y``
        bindings into it.
        """
        if name in symbols.imported_names:
            return symbols.imported_names[name]
        if (
            name in symbols.constant_units
            or name in symbols.return_units
            or name in symbols.functions
        ):
            return symbols.module, name
        return None

    def function_def(
        self, module: str, name: str
    ) -> Optional[Tuple["ModuleSymbols", ast.FunctionDef]]:
        """The defining module's symbols + AST node of a top-level function."""
        symbols = self.modules.get(module)
        if symbols is None or name not in symbols.functions:
            return None
        return symbols, symbols.functions[name]

    def resolve_call(
        self, symbols: ModuleSymbols, node: ast.Call
    ) -> Optional[Tuple[str, str]]:
        """Resolve a call's target to ``(module, function)``, best effort.

        Handles direct names (local functions, ``from X import f`` bindings)
        and single-attribute access on an imported module (``mod.f(...)``).
        Methods, nested attributes, and anything dynamic resolve to ``None``.
        """
        func = node.func
        if isinstance(func, ast.Name):
            resolved = self.resolve_name(symbols, func.id)
            if resolved is not None:
                return resolved
            return None
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            module = symbols.imported_modules.get(func.value.id)
            if module is None:
                # ``from pkg import sub`` binds a module under a plain name.
                imported = symbols.imported_names.get(func.value.id)
                if imported is not None:
                    module = f"{imported[0]}.{imported[1]}"
            if module is not None and module in self.modules:
                return module, func.attr
        return None

    # -- worker closure -------------------------------------------------

    def _worker_closure(self) -> Set[str]:
        closure: Set[str] = set()
        queue: List[str] = []
        for module, symbols in self.modules.items():
            if module == WORKER_ROOT or "worker" in symbols.ctx.scopes:
                queue.append(module)
        while queue:
            module = queue.pop()
            if module in closure:
                continue
            closure.add(module)
            symbols = self.modules.get(module)
            if symbols is None:
                continue
            for target in symbols.imports:
                # Package imports pull in the package __init__ as well.
                for candidate in (target, target.rpartition(".")[0]):
                    if candidate in self.modules and candidate not in closure:
                        queue.append(candidate)
        return {m for m in closure if m in self.modules}

    def in_worker_scope(self, ctx: FileContext) -> bool:
        """Whether R3 applies to this file."""
        return ctx.module in self.worker_modules or "worker" in ctx.scopes

    def in_unit_scope(self, ctx: FileContext) -> bool:
        """Whether R1's constant-tagging requirement applies to this file."""
        if "units" in ctx.scopes:
            return True
        module = ctx.module
        if module in UNIT_SCOPED_MODULES:
            return True
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in UNIT_SCOPED_PACKAGES
        )

    # -- call graph -----------------------------------------------------

    @property
    def callgraph(self) -> "CallGraph":
        """The project call graph, built lazily on first use."""
        graph = getattr(self, "_callgraph", None)
        if graph is None:
            from .callgraph import CallGraph  # lazy: avoid import cycle

            graph = CallGraph(self)
            self._callgraph = graph
        return graph
