"""Project-wide symbol table shared by the lint rules.

Built once per analyzer run from every parsed file:

* unit tags of module-level constants (``[unit: ...]`` comments),
* function return-unit tags (``[unit-return: ...]`` docstrings),
* attribute unit tags from class docstrings (``attr: ... [unit: X]``),
* a static import graph over the analyzed modules, from which the
  *worker closure* -- every module transitively imported by
  ``repro.optimize.parallel`` -- is derived for the pool-safety rule.

All resolution is purely syntactic; imports that leave the analyzed file set
(numpy, scipy, stdlib) simply resolve to nothing.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .core import FileContext
from .units import Unit, parse_unit

#: Module whose import closure defines the worker-safety (R3) scope.
WORKER_ROOT = "repro.optimize.parallel"

#: Modules whose numeric constants must carry unit tags (R1), by dotted
#: module name or package prefix.
UNIT_SCOPED_MODULES = ("repro.constants", "repro.materials")
UNIT_SCOPED_PACKAGES = ("repro.flow", "repro.thermal", "repro.cooling")


def _package_of(module: str, is_package: bool) -> str:
    """The package a module's relative imports resolve against."""
    if is_package:
        return module
    return module.rpartition(".")[0]


def resolve_import_from(
    module: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute dotted module targeted by a ``from ... import`` statement."""
    if node.level == 0:
        return node.module
    base = _package_of(module, is_package)
    for _ in range(node.level - 1):
        if not base:
            return None
        base = base.rpartition(".")[0]
    if node.module:
        return f"{base}.{node.module}" if base else node.module
    return base or None


class ModuleSymbols:
    """Per-module facts: unit tags and import bindings."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module = ctx.module
        self.is_package = ctx.path.endswith("__init__.py")
        #: Module-level constant name -> parsed unit.
        self.constant_units: Dict[str, Unit] = {}
        #: Function (top-level) name -> parsed return unit.
        self.return_units: Dict[str, Unit] = {}
        #: Local alias -> (module, name) for ``from mod import name [as alias]``.
        self.imported_names: Dict[str, Tuple[str, str]] = {}
        #: Local alias -> module for ``import mod [as alias]``.
        self.imported_modules: Dict[str, str] = {}
        #: Modules this file mentions anywhere (for the import graph).
        self.imports: Set[str] = set()
        self._scan()

    def _scan(self) -> None:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports.add(alias.name)
                    if alias.asname:
                        self.imported_modules[alias.asname] = alias.name
                    else:
                        root = alias.name.partition(".")[0]
                        self.imported_modules[root] = root
            elif isinstance(node, ast.ImportFrom):
                target = resolve_import_from(
                    self.module, self.is_package, node
                )
                if target is None:
                    continue
                self.imports.add(target)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    # ``from pkg import sub`` may name a module; record both
                    # interpretations and let lookups pick whichever exists.
                    self.imports.add(f"{target}.{alias.name}")
                    self.imported_names[alias.asname or alias.name] = (
                        target,
                        alias.name,
                    )
        for node in self.ctx.tree.body:
            self._scan_toplevel(node)

    def _scan_toplevel(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                tag = self.ctx.unit_tag_for_line(node.lineno)
                if tag is not None:
                    self.constant_units[target.id] = parse_unit(tag)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            tag = self.ctx.unit_tag_for_line(node.lineno)
            if tag is not None:
                self.constant_units[node.target.id] = parse_unit(tag)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            tag = self.ctx.unit_return_tag(node)
            if tag is not None:
                self.return_units[node.name] = parse_unit(tag)


class Project:
    """Cross-file symbol table for one analyzer run."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.contexts = list(contexts)
        self.modules: Dict[str, ModuleSymbols] = {}
        for ctx in contexts:
            self.modules[ctx.module] = ModuleSymbols(ctx)
        self.attribute_units: Dict[str, Optional[Unit]] = {}
        self._collect_attribute_units()
        self.worker_modules: Set[str] = self._worker_closure()

    # -- units ----------------------------------------------------------

    def _collect_attribute_units(self) -> None:
        """Attribute tags from class docstrings, dropped on conflict."""
        for symbols in self.modules.values():
            for node in ast.walk(symbols.ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                for attr, tag in FileContext.attribute_unit_tags(
                    node
                ).items():
                    unit = parse_unit(tag)
                    if attr in self.attribute_units:
                        if self.attribute_units[attr] != unit:
                            self.attribute_units[attr] = None  # ambiguous
                    else:
                        self.attribute_units[attr] = unit

    def constant_unit(
        self, module: str, name: str
    ) -> Optional[Unit]:
        """Unit of a module-level constant, if tagged."""
        symbols = self.modules.get(module)
        if symbols is None:
            return None
        return symbols.constant_units.get(name)

    def return_unit(self, module: str, name: str) -> Optional[Unit]:
        """Return unit of a top-level function, if tagged."""
        symbols = self.modules.get(module)
        if symbols is None:
            return None
        return symbols.return_units.get(name)

    def attribute_unit(self, attr: str) -> Optional[Unit]:
        """Unambiguous unit of a tagged attribute name, if any."""
        return self.attribute_units.get(attr)

    def resolve_name(
        self, symbols: ModuleSymbols, name: str
    ) -> Optional[Tuple[str, str]]:
        """Resolve a local name to ``(module, symbol)``.

        Covers names defined in the module itself and ``from X import Y``
        bindings into it.
        """
        if name in symbols.imported_names:
            return symbols.imported_names[name]
        if name in symbols.constant_units or name in symbols.return_units:
            return symbols.module, name
        return None

    # -- worker closure -------------------------------------------------

    def _worker_closure(self) -> Set[str]:
        closure: Set[str] = set()
        queue: List[str] = []
        for module, symbols in self.modules.items():
            if module == WORKER_ROOT or "worker" in symbols.ctx.scopes:
                queue.append(module)
        while queue:
            module = queue.pop()
            if module in closure:
                continue
            closure.add(module)
            symbols = self.modules.get(module)
            if symbols is None:
                continue
            for target in symbols.imports:
                # Package imports pull in the package __init__ as well.
                for candidate in (target, target.rpartition(".")[0]):
                    if candidate in self.modules and candidate not in closure:
                        queue.append(candidate)
        return {m for m in closure if m in self.modules}

    def in_worker_scope(self, ctx: FileContext) -> bool:
        """Whether R3 applies to this file."""
        return ctx.module in self.worker_modules or "worker" in ctx.scopes

    def in_unit_scope(self, ctx: FileContext) -> bool:
        """Whether R1's constant-tagging requirement applies to this file."""
        if "units" in ctx.scopes:
            return True
        module = ctx.module
        if module in UNIT_SCOPED_MODULES:
            return True
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in UNIT_SCOPED_PACKAGES
        )
