"""SARIF 2.1.0 export of a lint run.

SARIF (Static Analysis Results Interchange Format) is the OASIS standard
code-scanning UIs ingest -- GitHub's code-scanning tab, VS Code's SARIF
viewer, and most CI dashboards.  ``python -m repro.lint --sarif out.sarif``
writes one ``run`` whose ``tool.driver`` lists every registered rule and
whose ``results`` carry all findings:

* active findings: plain results at ``error``/``warning`` level,
* baselined findings (``--baseline``): same results with
  ``baselineState: "unchanged"`` so dashboards show them as known debt,
* in-source suppressions: results with a ``suppressions`` entry of kind
  ``inSource`` -- visible, but not alarming.

Only the stable subset of the schema is emitted (tool, rules, results,
physical locations, suppressions); the output validates against the
published 2.1.0 JSON schema, which the test suite asserts with a trimmed
embedded copy.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Union

from ..checkpoint.atomic import atomic_write_json
from .core import Finding, LintReport, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_URI = "https://github.com/conf-dac/liquid-cooling-repro"


def _artifact_uri(path: str) -> str:
    return path.replace("\\", "/")


def _result(
    finding: Finding,
    *,
    baselined: bool = False,
    suppressed: bool = False,
) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "error" if finding.severity == "error" else "warning",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _artifact_uri(finding.path),
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if baselined:
        result["baselineState"] = "unchanged"
    if suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def to_sarif(report: LintReport, rules: List[Rule]) -> Dict[str, Any]:
    """The SARIF 2.1.0 document for one lint run."""
    driver_rules = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {
                "level": "error" if rule.severity == "error" else "warning",
            },
        }
        for rule in sorted(rules, key=lambda r: r.id)
    ]
    results = (
        [_result(f) for f in report.findings]
        + [_result(f, baselined=True) for f in report.baselined]
        + [_result(f, suppressed=True) for f in report.suppressed]
    )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": _TOOL_URI,
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    report: LintReport, rules: List[Rule], path: Union[str, Path]
) -> None:
    """Serialize :func:`to_sarif` to ``path``."""
    atomic_write_json(path, to_sarif(report, rules))
