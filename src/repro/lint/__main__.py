"""Command line for the domain lint pass: ``python -m repro.lint [paths]``.

Exit status is 0 only when there are no unsuppressed error findings *and*
the suppression budget holds (``--max-suppressions``, default 0) -- CI runs
this as a blocking job, so a new suppression is a reviewed decision, not a
drive-by.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..errors import LintError
from .core import Analyzer, LintReport, all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Domain-aware static analysis (units, cache keys, "
        "worker-pool safety, error discipline, sparse anti-patterns).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--max-suppressions",
        type=int,
        default=0,
        metavar="N",
        help="allowed number of active repro-lint: disable comments "
        "(default: 0 -- fix, don't suppress)",
    )
    parser.add_argument(
        "--strict-warnings",
        action="store_true",
        help="treat warning-severity findings as failures",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="accept the findings recorded in FILE (they are reported as "
        "baselined, not failures); see lint-baseline.json",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="snapshot the current unsuppressed findings to FILE and exit 0",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="additionally write the report as SARIF 2.1.0 to FILE",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="incremental result cache directory "
        "(default: .lint_cache; see --no-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="analyze everything from scratch and do not touch the cache",
    )
    return parser


def _print_text_report(report: LintReport, max_suppressions: int) -> None:
    for finding in report.findings:
        print(finding.render())
    if report.suppressed:
        print(
            f"-- suppressions in use: {len(report.suppressed)} "
            f"(budget {max_suppressions})"
        )
        for finding in report.suppressed:
            print(f"   suppressed {finding.render()}")
    for suppression in report.unused_suppressions:
        print(
            f"-- stale suppression at {suppression.path}:{suppression.line} "
            f"({', '.join(suppression.rules)}): no matching finding"
        )
    if report.baselined:
        print(f"-- baselined findings carried as known debt: "
              f"{len(report.baselined)}")
        for finding in report.baselined:
            print(f"   baselined {finding.render()}")
    for rule, path, message in report.stale_baseline:
        print(
            f"-- stale baseline entry {rule} at {path}: no matching finding "
            f"({message})"
        )
    if report.cache_hits:
        print(
            f"-- incremental: {len(report.reanalyzed)} analyzed, "
            f"{report.cache_hits} from cache"
        )
    print(
        f"checked {report.files_checked} files: "
        f"{len(report.errors)} errors, {len(report.warnings)} warnings, "
        f"{len(report.suppressed)} suppressed"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in sorted(all_rules().items()):
            print(f"{rule_id}  {rule_cls.name:<18s} {rule_cls.description}")
        return 0

    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
    try:
        analyzer = Analyzer(select=select)
        cache = None
        if not args.no_cache:
            from .cache import DEFAULT_CACHE_DIR, ResultCache

            cache = ResultCache(
                args.cache_dir or DEFAULT_CACHE_DIR,
                rule_ids=[rule.id for rule in analyzer.rules],
            )
        report = analyzer.run(args.paths, cache=cache)

        if args.write_baseline:
            from .baseline import write_baseline

            write_baseline(report.findings, args.write_baseline)
            print(
                f"wrote {len(report.findings)} finding(s) to baseline "
                f"{args.write_baseline}"
            )
            return 0

        if args.baseline:
            from .baseline import apply_baseline, load_baseline

            apply_baseline(report, load_baseline(args.baseline))
    except LintError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    if args.sarif:
        from .sarif import write_sarif

        write_sarif(report, analyzer.rules, args.sarif)

    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        _print_text_report(report, args.max_suppressions)
    return report.exit_code(
        max_suppressions=args.max_suppressions,
        strict_warnings=args.strict_warnings,
    )


if __name__ == "__main__":
    sys.exit(main())
