"""Framework of the domain lint pass: findings, rules, files, suppressions.

The analyzer is AST-based and dependency-free (stdlib only): every ``*.py``
file under the given paths is parsed once into a :class:`FileContext`
(tree, comments, docstring scope markers, suppression comments), a
project-wide :class:`~repro.lint.symbols.Project` symbol table is built, and
each registered :class:`Rule` walks the contexts emitting :class:`Finding`
objects.

Suppressions
------------

A finding may be silenced with a comment on its line (or the line directly
above)::

    risky_thing()  # repro-lint: disable=R4
    # repro-lint: disable=R2,R5
    other_risky_thing()

Suppressions are *budgeted*: the CLI fails when more than ``--max-
suppressions`` (default 0) are used, so silencing a rule is a reviewed,
temporary state -- the report lists every suppression in use plus any stale
ones that no longer match a finding.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from ..errors import LintError

if TYPE_CHECKING:  # pragma: no cover -- import cycle broken at runtime
    from .cache import ResultCache

#: Ordered severities; ``error`` findings fail the build, ``warning`` ones
#: are reported but only fail under ``--strict-warnings``.
SEVERITIES = ("error", "warning")

_SUPPRESS_RE = re.compile(r"repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
#: Scope markers must sit on their own docstring line (anchored), so prose
#: *mentioning* a marker never accidentally declares one.
_SCOPE_RE = re.compile(r"^repro-lint-scope:\s*([a-z\-, ]+)$", re.MULTILINE)
_UNIT_TAG_RE = re.compile(r"\[unit:\s*([^\]]+)\]")
_UNIT_RETURN_RE = re.compile(r"\[unit-return:\s*([^\]]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def render(self) -> str:
        """``path:line:col: RULE message`` (clickable in most terminals)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


@dataclass(frozen=True)
class Suppression:
    """One ``repro-lint: disable=`` comment found in a file."""

    path: str
    line: int
    rules: Tuple[str, ...]


class FileContext:
    """Parsed view of one source file shared by every rule.

    Attributes:
        path: Path as given on the command line (kept relative for output).
        module: Best-effort dotted module name (``repro.flow.network``).
        source: Raw file text.
        tree: Parsed ``ast.Module``.
        comments: Mapping of line number -> comment text (without ``#``).
        scopes: Scope markers declared in the module docstring via
            ``repro-lint-scope: units, worker`` (used by rules whose default
            scoping is path-based, mainly so fixtures can opt in).
    """

    def __init__(self, path: Path, source: str, display_path: str) -> None:
        self.path = display_path
        self.source = source
        try:
            self.tree = ast.parse(source, filename=display_path)
        except SyntaxError as exc:
            raise LintError(f"{display_path}: cannot parse: {exc}") from exc
        self.module = _module_name(path)
        self.comments: Dict[int, str] = {}
        self.suppressions: List[Suppression] = []
        self._collect_comments()
        self.scopes: Set[str] = self._scope_markers()

    # -- comment machinery ----------------------------------------------

    def _collect_comments(self) -> None:
        reader = io.StringIO(self.source).readline
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type != tokenize.COMMENT:
                    continue
                line = token.start[0]
                text = token.string.lstrip("#").strip()
                self.comments[line] = text
                match = _SUPPRESS_RE.search(text)
                if match:
                    rules = tuple(
                        r.strip()
                        for r in match.group(1).split(",")
                        if r.strip()
                    )
                    self.suppressions.append(
                        Suppression(self.path, line, rules)
                    )
        except tokenize.TokenError:
            # A tokenize hiccup only costs comment-based features.
            pass

    def _scope_markers(self) -> Set[str]:
        doc = ast.get_docstring(self.tree) or ""
        scopes: Set[str] = set()
        for match in _SCOPE_RE.finditer(doc):
            scopes.update(
                s.strip() for s in match.group(1).split(",") if s.strip()
            )
        return scopes

    # -- unit-tag helpers (used by R1 and the symbol table) -------------

    def unit_tag_for_line(self, lineno: int) -> Optional[str]:
        """The ``[unit: ...]`` tag attached to the statement at ``lineno``.

        Looks at the trailing comment on the line itself, then walks the
        contiguous comment block directly above (the ``#:`` convention).
        """
        comment = self.comments.get(lineno)
        if comment:
            match = _UNIT_TAG_RE.search(comment)
            if match:
                return match.group(1).strip()
        line = lineno - 1
        while line in self.comments:
            match = _UNIT_TAG_RE.search(self.comments[line])
            if match:
                return match.group(1).strip()
            line -= 1
        return None

    @staticmethod
    def unit_return_tag(node: ast.AST) -> Optional[str]:
        """The ``[unit-return: ...]`` tag of a function docstring."""
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return None
        doc = ast.get_docstring(node) or ""
        match = _UNIT_RETURN_RE.search(doc)
        return match.group(1).strip() if match else None

    @staticmethod
    def attribute_unit_tags(node: ast.ClassDef) -> Dict[str, str]:
        """``attr -> unit`` tags from a class docstring Attributes section.

        Any docstring line shaped like ``name: ... [unit: X]`` counts.
        """
        doc = ast.get_docstring(node) or ""
        tags: Dict[str, str] = {}
        for line in doc.splitlines():
            stripped = line.strip()
            match = re.match(r"(\w+)\s*:", stripped)
            if not match:
                continue
            unit = _UNIT_TAG_RE.search(stripped)
            if unit:
                tags[match.group(1)] = unit.group(1).strip()
        return tags


def _module_name(path: Path) -> str:
    """Dotted module name from the filesystem location, best effort.

    Walks up while ``__init__.py`` siblings exist, so ``src/repro/flow/
    network.py`` maps to ``repro.flow.network``; loose files (fixtures) map
    to their stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` / :attr:`name` / :attr:`description` and
    implement :meth:`check`.  Rules are stateless across runs; per-run state
    lives in locals or on the project.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    severity: str = "error"

    def check(
        self, ctx: FileContext, project: "Project"
    ) -> Iterator[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        """Build a finding anchored at an AST node."""
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity or self.severity,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise LintError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise LintError(f"duplicate rule id {rule_cls.id}")
    if rule_cls.severity not in SEVERITIES:
        raise LintError(
            f"rule {rule_cls.id}: unknown severity {rule_cls.severity!r}"
        )
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> Dict[str, Type[Rule]]:
    """The registered rules by id (importing the rule modules on demand)."""
    from . import rules as _rules  # noqa: F401  (registers on import)

    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# Report + analyzer
# ---------------------------------------------------------------------------


@dataclass
class LintReport:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    unused_suppressions: List[Suppression] = field(default_factory=list)
    files_checked: int = 0
    #: Findings accepted by a ``--baseline`` file (reported, not failing).
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline fingerprints that matched no finding (shrink the file!).
    stale_baseline: List[tuple] = field(default_factory=list)
    #: Display paths actually run through the rules this time.
    reanalyzed: List[str] = field(default_factory=list)
    #: Files served from the incremental result cache.
    cache_hits: int = 0

    @property
    def errors(self) -> List[Finding]:
        """Unsuppressed findings with ``error`` severity."""
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        """Unsuppressed findings with ``warning`` severity."""
        return [f for f in self.findings if f.severity == "warning"]

    def exit_code(
        self, max_suppressions: int = 0, strict_warnings: bool = False
    ) -> int:
        """0 when clean under the suppression budget, 1 otherwise."""
        if self.errors:
            return 1
        if strict_warnings and self.warnings:
            return 1
        if len(self.suppressed) > max_suppressions:
            return 1
        return 0

    def to_json(self) -> dict:
        """JSON-ready summary (the ``--format json`` payload)."""
        return {
            "files_checked": self.files_checked,
            "findings": [f.__dict__ for f in self.findings],
            "suppressed": [f.__dict__ for f in self.suppressed],
            "baselined": [f.__dict__ for f in self.baselined],
            "stale_baseline": [list(key) for key in self.stale_baseline],
            "unused_suppressions": [
                {"path": s.path, "line": s.line, "rules": list(s.rules)}
                for s in self.unused_suppressions
            ],
            "reanalyzed": list(self.reanalyzed),
            "cache_hits": self.cache_hits,
        }


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise LintError(f"no such file or directory: {raw}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


class Analyzer:
    """Run a set of rules over a set of files.

    Args:
        select: Rule ids to run (default: every registered rule).
    """

    def __init__(self, select: Optional[Sequence[str]] = None) -> None:
        registry = all_rules()
        if select is None:
            chosen = sorted(registry)
        else:
            unknown = [r for r in select if r not in registry]
            if unknown:
                raise LintError(
                    f"unknown rule id(s) {unknown}; known: {sorted(registry)}"
                )
            chosen = list(select)
        self.rules: List[Rule] = [registry[rule_id]() for rule_id in chosen]

    def run(
        self, paths: Sequence[str], cache: Optional["ResultCache"] = None
    ) -> LintReport:
        """Analyze every ``*.py`` file under ``paths``.

        With a :class:`~repro.lint.cache.ResultCache`, files whose
        dependency-aware content key is unchanged reuse their recorded
        findings instead of re-running the rules (see
        :mod:`repro.lint.cache` for exactly what the key covers).
        """
        import hashlib

        from .symbols import Project

        files = collect_files(paths)
        contexts: List[FileContext] = []
        for file_path in files:
            source = file_path.read_text(encoding="utf-8")
            contexts.append(FileContext(file_path, source, str(file_path)))
        project = Project(contexts)

        source_hashes = {
            ctx.module: hashlib.sha256(
                ctx.source.encode("utf-8")
            ).hexdigest()
            for ctx in contexts
        }
        raw: List[Finding] = []
        reanalyzed: List[str] = []
        cache_hits = 0
        for ctx in contexts:
            cached: Optional[List[Finding]] = None
            key = ""
            if cache is not None:
                key = cache.file_key(ctx, project, source_hashes)
                cached = cache.get(ctx.path, key)
            if cached is not None:
                raw.extend(cached)
                cache_hits += 1
                continue
            found: List[Finding] = []
            for rule in self.rules:
                found.extend(rule.check(ctx, project))
            raw.extend(found)
            reanalyzed.append(ctx.path)
            if cache is not None:
                cache.put(ctx.path, key, found)
        if cache is not None:
            cache.save()
        # Frozen findings dedupe exactly; a node reachable through two key
        # contexts (say) reports once.
        raw = sorted(
            set(raw), key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
        )

        report = LintReport(
            files_checked=len(contexts),
            reanalyzed=reanalyzed,
            cache_hits=cache_hits,
        )
        used: Set[Tuple[str, int]] = set()
        suppression_index: Dict[Tuple[str, int], Suppression] = {}
        for ctx in contexts:
            for suppression in ctx.suppressions:
                suppression_index[(suppression.path, suppression.line)] = (
                    suppression
                )

        for finding in raw:
            suppression = _matching_suppression(suppression_index, finding)
            if suppression is not None:
                used.add((suppression.path, suppression.line))
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)

        for key, suppression in sorted(suppression_index.items()):
            if key not in used:
                report.unused_suppressions.append(suppression)
        return report


def _matching_suppression(
    index: Dict[Tuple[str, int], Suppression], finding: Finding
) -> Optional[Suppression]:
    """A suppression on the finding's line or the line directly above."""
    for line in (finding.line, finding.line - 1):
        suppression = index.get((finding.path, line))
        if suppression is None:
            continue
        if finding.rule in suppression.rules or "all" in suppression.rules:
            return suppression
    return None
