"""Project-wide call graph over the analyzed modules.

Nodes are top-level functions identified by ``(module, name)``; edges go
from caller to callee.  Resolution is purely syntactic and follows the same
rules as :meth:`repro.lint.symbols.Project.resolve_call`: direct names
(local functions and ``from X import f`` bindings) and single-attribute
calls on imported modules (``mod.f(...)``).  Method calls, higher-order
dispatch, and calls that leave the analyzed file set produce no edge --
the graph is an *under*-approximation of runtime calls, which is the safe
direction for the dataflow rules built on it (an unresolved callee means
"unknown", never a wrong summary).

Module-level code (the body outside any ``def``) is modeled as a pseudo
function named :data:`MODULE_BODY` so constants computed at import time
participate in the graph.

The graph also exposes the *module dependency closure* used by the
incremental result cache (:mod:`repro.lint.cache`): a file's findings may
depend on any module it imports (unit tags, function signatures, taint
summaries all flow along import edges), so the cache key of a file covers
the content of its transitive imports within the analyzed set.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .symbols import ModuleSymbols, Project

#: Pseudo function name for a module's top-level (import-time) code.
MODULE_BODY = "<module>"

#: A call-graph node: ``(module, function)``.
FunctionKey = Tuple[str, str]


class CallGraph:
    """Static caller -> callee edges over a :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: caller -> set of callees (both restricted to analyzed functions).
        self.calls: Dict[FunctionKey, Set[FunctionKey]] = {}
        #: callee -> set of callers (reverse edges).
        self.called_by: Dict[FunctionKey, Set[FunctionKey]] = {}
        for symbols in project.modules.values():
            self._scan_module(symbols)

    # -- construction ---------------------------------------------------

    def _scan_module(self, symbols: ModuleSymbols) -> None:
        tree = symbols.ctx.tree
        for name, node in symbols.functions.items():
            self._scan_function(symbols, (symbols.module, name), node)
        # Everything not inside a top-level function body belongs to the
        # module pseudo node (class bodies and methods included: a method
        # call edge still records "this module calls that function").
        toplevel = set()
        for name, node in symbols.functions.items():
            for sub in ast.walk(node):
                toplevel.add(id(sub))
        caller = (symbols.module, MODULE_BODY)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and id(node) not in toplevel:
                self._add_edge(symbols, caller, node)

    def _scan_function(
        self,
        symbols: ModuleSymbols,
        caller: FunctionKey,
        node: ast.FunctionDef,
    ) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._add_edge(symbols, caller, sub)

    def _add_edge(
        self, symbols: ModuleSymbols, caller: FunctionKey, call: ast.Call
    ) -> None:
        resolved = self.project.resolve_call(symbols, call)
        if resolved is None:
            return
        if self.project.function_def(*resolved) is None:
            return
        self.calls.setdefault(caller, set()).add(resolved)
        self.called_by.setdefault(resolved, set()).add(caller)

    # -- queries --------------------------------------------------------

    def callees(self, module: str, name: str) -> Set[FunctionKey]:
        """Functions directly called by ``module.name``."""
        return set(self.calls.get((module, name), ()))

    def callers(self, module: str, name: str) -> Set[FunctionKey]:
        """Call sites' functions that directly call ``module.name``."""
        return set(self.called_by.get((module, name), ()))

    def functions(self) -> Iterator[FunctionKey]:
        """Every analyzed top-level function, in deterministic order."""
        for module in sorted(self.project.modules):
            symbols = self.project.modules[module]
            for name in symbols.functions:
                yield module, name

    def topological_order(self) -> List[FunctionKey]:
        """Callees-before-callers order, cycles broken deterministically.

        Used by the taint-summary computation so most summaries are final
        after one pass; recursion cycles simply fall back to the extra
        fixpoint iterations the caller runs anyway.
        """
        order: List[FunctionKey] = []
        visited: Set[FunctionKey] = set()

        def visit(key: FunctionKey, stack: Set[FunctionKey]) -> None:
            if key in visited or key in stack:
                return
            stack.add(key)
            for callee in sorted(self.calls.get(key, ())):
                visit(callee, stack)
            stack.discard(key)
            visited.add(key)
            order.append(key)

        for key in self.functions():
            visit(key, set())
        return order

    # -- module dependency closure (incremental cache) -------------------

    def module_imports(self, module: str) -> Set[str]:
        """Analyzed modules ``module`` imports directly.

        Only the *recorded import targets* count: name resolution (and
        therefore every cross-module fact a rule can read -- unit tags,
        signatures, taint summaries) always goes through the module a
        binding points at, never implicitly through parent-package
        ``__init__`` files.  Re-exports are covered because ``from pkg
        import Name`` records ``pkg`` itself as a target.  Expanding to
        parent packages would make the root package (which imports the
        world) a dependency hub and defeat incremental invalidation.
        """
        symbols = self.project.modules.get(module)
        if symbols is None:
            return set()
        return {
            target
            for target in symbols.imports
            if target in self.project.modules and target != module
        }

    def dependency_closure(self, module: str) -> Set[str]:
        """Analyzed modules whose *content* this module's findings can read.

        Direct imports always count: resolution reads their tags,
        signatures, and constants.  A dependency's own imports matter only
        when it defines top-level functions -- their taint summaries chase
        resolve targets recursively -- because every other cross-module
        read (unit tags, re-export bindings, attribute tags) consults only
        the target module's own source.  Pure re-export packages (a root
        ``__init__`` importing the world) therefore contribute content,
        not transitivity, which keeps the closure -- and the incremental
        cache's invalidation set -- proportional to real coupling.
        """
        closure: Set[str] = set()
        queue: List[str] = sorted(self.module_imports(module))
        while queue:
            dep = queue.pop()
            if dep in closure or dep == module:
                continue
            closure.add(dep)
            symbols = self.project.modules.get(dep)
            if symbols is not None and symbols.functions:
                queue.extend(sorted(self.module_imports(dep)))
        closure.discard(module)
        return closure

    def dependents_of(self, module: str) -> Set[str]:
        """Modules whose dependency closure contains ``module``.

        These are exactly the files the incremental cache must re-analyze
        when ``module`` changes.
        """
        out: Set[str] = set()
        for candidate in self.project.modules:
            if candidate == module:
                continue
            if module in self.dependency_closure(candidate):
                out.add(candidate)
        return out


def build_callgraph(project: Project) -> CallGraph:
    """Construct the call graph for ``project`` (convenience wrapper)."""
    return CallGraph(project)
