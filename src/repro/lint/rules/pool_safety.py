"""R3 -- worker-pool safety.

Modules in the import closure of ``repro.optimize.parallel`` execute inside
persistent worker processes.  Module-level mutable state there is replicated
per worker and silently diverges from the parent unless it follows the
sanctioned lifecycle pattern (installed by the pool initializer, or managed
through explicit ``set_*`` / ``clear_*`` / ``reset*`` / ``shutdown*``
functions of the defining module).  The rule enforces three invariants on
worker-scoped files (plus any file whose docstring declares
``repro-lint-scope: worker``):

* **R3a**: ``global`` writes are only allowed inside sanctioned lifecycle
  functions (``_init_worker*``, ``set_*``, ``clear_*``, ``reset*``,
  ``shutdown*``, ``configure*``).
* **R3b**: module-level mutable containers (dict/list/set literals or
  constructor calls) must be private (``_name``); public module constants
  must be immutable -- wrap lookup tables in ``types.MappingProxyType`` or
  use tuples/frozensets.
* **R3c**: state owned by *another* module must never be mutated directly
  (no ``othermod.NAME = ...``, no ``imported_dict[k] = v``, no
  ``imported_list.append(...)``); go through the owner's lifecycle
  functions instead.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Set

from ..core import FileContext, Finding, Rule, register
from ..symbols import Project

_SANCTIONED_FN_RE = re.compile(
    r"^_?(init|set|clear|reset|shutdown|configure)[A-Za-z0-9_]*$"
)

#: Constructor names producing mutable containers.
_MUTABLE_CALLS = {
    "dict",
    "list",
    "set",
    "OrderedDict",
    "defaultdict",
    "deque",
    "Counter",
    "bytearray",
}

#: Constructor names producing immutable views/containers.
_IMMUTABLE_CALLS = {"MappingProxyType", "frozenset", "tuple"}

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "remove",
    "discard",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "sort",
    "reverse",
}


def _is_mutable_rhs(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(node, (ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in _IMMUTABLE_CALLS:
            return False
        if name in _MUTABLE_CALLS:
            return True
    return False


@register
class PoolSafetyRule(Rule):
    """R3: worker-imported modules must keep module state disciplined."""

    id = "R3"
    name = "pool-safety"
    description = (
        "modules imported by worker pools: global writes only in lifecycle "
        "functions, no public mutable module state, no cross-module mutation"
    )

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        if not project.in_worker_scope(ctx):
            return
        symbols = project.modules[ctx.module]
        imported_names: Set[str] = set(symbols.imported_names)
        imported_modules: Set[str] = set(symbols.imported_modules)

        yield from self._check_module_state(ctx)
        yield from self._check_globals(ctx)
        yield from self._check_cross_module(
            ctx, imported_names, imported_modules
        )

    # -- R3b: public mutable module constants ---------------------------

    def _check_module_state(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            targets = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_mutable_rhs(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("_"):
                    continue  # private worker-local state is the pattern
                yield self.finding(
                    ctx,
                    node,
                    f"public mutable module state {name!r} in a "
                    f"worker-imported module; make it private (_{name}) or "
                    f"immutable (types.MappingProxyType / tuple / frozenset)",
                )

    # -- R3a: global writes outside lifecycle functions ------------------

    def _check_globals(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if _SANCTIONED_FN_RE.match(node.name):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Global):
                    yield self.finding(
                        ctx,
                        sub,
                        f"function {node.name!r} writes module globals "
                        f"({', '.join(sub.names)}) outside the sanctioned "
                        f"initializer pattern (_init_worker*/set_*/clear_*/"
                        f"reset*/shutdown*)",
                    )

    # -- R3c: mutating another module's state ----------------------------

    def _check_cross_module(
        self,
        ctx: FileContext,
        imported_names: Set[str],
        imported_modules: Set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            # othermod.NAME = ... / del othermod.NAME
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for target in targets:
                    owner = self._foreign_owner(
                        target, imported_names, imported_modules
                    )
                    if owner is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"mutation of state owned by module/import "
                            f"{owner!r}; use its lifecycle functions instead",
                        )
            # imported.append(...) etc.
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr not in _MUTATING_METHODS:
                    continue
                owner = self._foreign_owner(
                    node.func.value, imported_names, imported_modules
                )
                if owner is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f".{node.func.attr}() mutates state owned by "
                        f"module/import {owner!r}; use its lifecycle "
                        f"functions instead",
                    )

    def _foreign_owner(
        self,
        target: ast.expr,
        imported_names: Set[str],
        imported_modules: Set[str],
    ) -> Optional[str]:
        """Name of the foreign module/import a target mutates, if any."""
        # imported_name[...] = / imported_name.method()
        if isinstance(target, ast.Subscript):
            return self._foreign_owner(
                target.value, imported_names, imported_modules
            )
        if isinstance(target, ast.Name):
            if target.id in imported_names:
                return target.id
            return None
        # module.attr = ... or module.attr[...] = ...
        if isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            if target.value.id in imported_modules:
                return target.value.id
        return None
