"""R4 -- error discipline.

The library's contract (see ``repro.errors``): every failure the library can
anticipate is a :class:`~repro.errors.ReproError` subclass, so callers can
catch library failures precisely while genuine bugs keep propagating.  Two
anti-patterns break that contract:

* ``except Exception`` / bare ``except`` -- swallows programming errors
  together with domain errors.  The one sanctioned crash-translation
  boundary lives in ``repro.errors.crash_boundary`` (which converts
  unexpected exceptions into :class:`~repro.errors.CandidateCrashError`);
  everything else must catch specific exception types.
* ``raise ValueError(...)`` & friends -- builtin exceptions from library
  code are indistinguishable from interpreter errors.  Raise the matching
  ``ReproError`` subclass instead.

``repro.errors`` itself (or a module whose docstring declares
``repro-lint-scope: error-boundary``) is exempt: it is where the boundary
is implemented.  ``repro.faults`` and its submodules are likewise
sanctioned: its injection sites must be able to *raise* builtin exceptions
on purpose (the ``raise-crash`` fault kind simulates exactly the untyped
programming error this rule exists to keep out of library code, so the
chaos suite can prove ``crash_boundary`` translates it).  ``repro.checkpoint``
is the third boundary: its reader must translate *any* unpickling failure of
an untrusted byte payload into a typed
:class:`~repro.errors.CheckpointError`, which requires one ``except
Exception`` around ``pickle.loads``.  ``repro.server.api`` is the fourth:
the HTTP dispatch edge must answer an opaque 500 -- instead of killing the
serving thread -- whatever a handler raises, which is a process-edge
``except Exception`` exactly like the CLI main's.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..core import FileContext, Finding, Rule, register
from ..symbols import Project

#: Modules allowed to implement sanctioned boundaries: ``repro.errors``
#: hosts the one except-Exception crash translator, ``repro.faults`` raises
#: builtin exceptions *deliberately* at its injection sites,
#: ``repro.checkpoint`` translates arbitrary unpickling failures into typed
#: ``CheckpointError``s, and ``repro.server.api`` turns anything a request
#: handler raises into an HTTP 500 at the process edge.  Submodules are
#: covered too (prefix match).
BOUNDARY_MODULES = (
    "repro.errors",
    "repro.faults",
    "repro.checkpoint",
    "repro.server.api",
)


def _is_boundary_module(module: str) -> bool:
    """Whether ``module`` (or a parent package) is a sanctioned boundary."""
    return any(
        module == boundary or module.startswith(boundary + ".")
        for boundary in BOUNDARY_MODULES
    )

#: Builtin exceptions library code must not raise (ReproError instead).
DISALLOWED_RAISES = frozenset({
    "Exception",
    "BaseException",
    "ValueError",
    "TypeError",
    "RuntimeError",
    "KeyError",
    "IndexError",
    "LookupError",
    "AttributeError",
    "ArithmeticError",
    "ZeroDivisionError",
    "OSError",
    "IOError",
    "EOFError",
    "AssertionError",
    "StopIteration",
    "SystemError",
    "BufferError",
})

#: Catch-all exception names flagged in handlers.
BROAD_CATCHES = frozenset({"Exception", "BaseException"})


def _exception_names(node: Optional[ast.expr]) -> Iterator[str]:
    """Plain names of the exception classes in an except clause."""
    if node is None:
        return
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            yield from _exception_names(element)
    elif isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr


@register
class ErrorDisciplineRule(Rule):
    """R4: no broad excepts, no builtin raises -- ReproError everywhere."""

    id = "R4"
    name = "error-discipline"
    description = (
        "no bare/``except Exception`` handlers outside repro.errors' "
        "crash_boundary; raise ReproError subclasses, not builtins"
    )

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        if _is_boundary_module(ctx.module) or "error-boundary" in ctx.scopes:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(ctx, node)
            elif isinstance(node, ast.Raise):
                yield from self._check_raise(ctx, node)

    def _check_handler(
        self, ctx: FileContext, node: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(
                ctx,
                node,
                "bare except swallows every error including bugs; catch "
                "specific exceptions (ReproError for library failures) or "
                "use repro.errors.crash_boundary",
            )
            return
        for name in _exception_names(node.type):
            if name in BROAD_CATCHES:
                yield self.finding(
                    ctx,
                    node,
                    f"except {name} mixes domain errors with genuine bugs; "
                    f"catch ReproError (infeasible/illegal inputs) and let "
                    f"repro.errors.crash_boundary translate the rest",
                )

    def _check_raise(
        self, ctx: FileContext, node: ast.Raise
    ) -> Iterator[Finding]:
        exc = node.exc
        name: Optional[str] = None
        if isinstance(exc, ast.Call):
            func = exc.func
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in DISALLOWED_RAISES:
            yield self.finding(
                ctx,
                node,
                f"raise {name} from library code; raise the matching "
                f"ReproError subclass from repro.errors instead",
            )
