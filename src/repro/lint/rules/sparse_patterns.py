"""R5 -- sparse-solver anti-patterns.

The system matrices here are ~10^4 x 10^4 and larger; the difference between
the memoized-LU path and a naive loop is the difference between the paper's
"seconds per candidate" and minutes.  Four anti-patterns are flagged:

* ``.todense()`` / ``.toarray()`` on matrices -- densifying a system matrix
  is O(n^2) memory and almost always a bug outside tiny debug scripts.
* Sparse construction or format conversion (``coo_matrix``/``csc_matrix``/
  ``diags``/``.tocsc()``/...) inside a ``for``/``while`` loop -- assemble
  once outside, or factor the loop body into a memoized helper.
* Direct factorization (``splu``/``spilu``/``factorized``) anywhere outside
  :mod:`repro.linalg` -- the backend registry is the single sanctioned
  owner of raw factorizations; everything else calls
  ``repro.linalg.factorize`` so backend selection, telemetry and the
  incremental-update machinery stay in one place.  A module can opt in
  (e.g. benchmark harnesses measuring raw backends) by declaring
  ``repro-lint-scope: sparse-backend`` in its docstring.
* ``splu`` inside a loop (flagged even inside the sanctioned modules), or
  ``spsolve`` anywhere -- repeated factorizations must go through a
  memoized cache; ``spsolve`` throws its factorization away by
  construction.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..core import FileContext, Finding, Rule, register
from ..symbols import Project

_DENSIFYING_METHODS = {"todense", "toarray"}

_SPARSE_CONSTRUCTORS = {
    "csr_matrix",
    "csc_matrix",
    "coo_matrix",
    "lil_matrix",
    "dok_matrix",
    "bsr_matrix",
    "diags",
    "spdiags",
    "identity",
    "kron",
    "block_diag",
}

_CONVERSION_METHODS = {"tocsc", "tocsr", "tocoo", "tolil", "todok"}

_FACTORIZERS = {"splu", "spilu", "factorized"}

#: The one module tree allowed to call raw factorizers: the pluggable
#: solver-backend registry.  Everything else goes through its
#: ``repro.linalg.factorize`` front door.
BACKEND_MODULE = "repro.linalg"


def _callee_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register
class SparsePatternsRule(Rule):
    """R5: keep matrices sparse, hoist assembly, memoize factorizations."""

    id = "R5"
    name = "sparse-patterns"
    description = (
        "no .todense()/.toarray(); no sparse assembly/conversion or splu "
        "inside loops; no spsolve; no splu/factorized outside repro.linalg "
        "(call repro.linalg.factorize)"
    )

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        module = ctx.module
        sanctioned = (
            module == BACKEND_MODULE
            or module.startswith(BACKEND_MODULE + ".")
            or "sparse-backend" in ctx.scopes
        )
        yield from self._walk(ctx, ctx.tree.body, loop_depth=0,
                              sanctioned=sanctioned)

    def _walk(
        self, ctx: FileContext, body: list, loop_depth: int, sanctioned: bool
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def's body runs when called, not per iteration.
                yield from self._walk(
                    ctx, stmt.body, loop_depth=0, sanctioned=sanctioned
                )
                continue
            if isinstance(stmt, ast.ClassDef):
                yield from self._walk(
                    ctx, stmt.body, loop_depth=0, sanctioned=sanctioned
                )
                continue
            inner_depth = loop_depth + (
                1 if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)) else 0
            )
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    yield from self._check_expr(
                        ctx, child, loop_depth, sanctioned
                    )
                elif isinstance(child, ast.stmt):
                    yield from self._walk(
                        ctx, [child], inner_depth, sanctioned
                    )
                elif isinstance(child, ast.excepthandler):
                    yield from self._walk(
                        ctx, child.body, inner_depth, sanctioned
                    )
                elif isinstance(child, ast.withitem):
                    yield from self._check_expr(
                        ctx, child.context_expr, loop_depth, sanctioned
                    )

    def _check_expr(
        self, ctx: FileContext, expr: ast.expr, loop_depth: int,
        sanctioned: bool,
    ) -> Iterator[Finding]:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            name = _callee_name(node)
            if name is None:
                continue
            if name in _DENSIFYING_METHODS and isinstance(
                node.func, ast.Attribute
            ):
                yield self.finding(
                    ctx,
                    node,
                    f".{name}() densifies a sparse matrix (O(n^2) memory); "
                    f"keep the computation sparse or slice what you need",
                )
            elif name == "spsolve":
                yield self.finding(
                    ctx,
                    node,
                    "spsolve discards its factorization; solve through "
                    "repro.linalg.factorize and reuse the factor",
                )
            elif name in _FACTORIZERS and not sanctioned:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() outside repro.linalg bypasses the solver "
                    f"backend registry; call repro.linalg.factorize (or "
                    f"declare 'repro-lint-scope: sparse-backend')",
                )
            elif loop_depth > 0 and name in _FACTORIZERS:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() inside a loop refactorizes every iteration; "
                    f"memoize per quantized pressure (the "
                    f"LinearThermalSystem._factorize pattern)",
                )
            elif loop_depth > 0 and name in _SPARSE_CONSTRUCTORS:
                yield self.finding(
                    ctx,
                    node,
                    f"sparse constructor {name}() inside a loop; assemble "
                    f"triplets across iterations and build once outside",
                )
            elif (
                loop_depth > 0
                and name in _CONVERSION_METHODS
                and isinstance(node.func, ast.Attribute)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f".{name}() format conversion inside a loop; convert "
                    f"once outside the loop",
                )
