"""R1 -- physics-unit consistency.

Two checks:

* **Tag coverage**: every module-level ``ALL_CAPS`` numeric constant in a
  unit-scoped module (``repro.constants``, ``repro.materials``, ``repro.flow``,
  ``repro.thermal``, ``repro.cooling``, or any module whose docstring declares
  ``repro-lint-scope: units``) must carry a machine-readable ``[unit: ...]``
  tag in its ``#:`` comment (``[unit: 1]`` for dimensionless values).

* **Mixing**: additions, subtractions and order comparisons whose operand
  units can both be inferred must agree dimensionally.  Inference follows
  tagged constants (across imports), ``[unit-return: ...]`` function tags,
  ``[unit: ...]`` attribute tags in class docstrings, local assignments,
  parameter defaults, and the ``* / **`` unit algebra; everything else is
  *unknown* and never flagged, keeping the checker quiet on untagged code.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional

from ..core import FileContext, Finding, Rule, register
from ..symbols import ModuleSymbols, Project
from ..units import DIMENSIONLESS, Unit, format_unit

_CONST_NAME_RE = re.compile(r"^_?[A-Z][A-Z0-9_]*$")

#: Builtins that return their (single) argument's unit unchanged.
_PASSTHROUGH_CALLS = {"float", "abs"}


def _is_numeric_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _is_numeric_literal(node.operand)
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool)


class UnitInferencer:
    """Best-effort unit inference over one function (or module) body."""

    def __init__(
        self,
        rule: "UnitsRule",
        ctx: FileContext,
        symbols: ModuleSymbols,
        project: Project,
    ) -> None:
        self.rule = rule
        self.ctx = ctx
        self.symbols = symbols
        self.project = project
        #: Local name -> unit (None once a name becomes ambiguous).
        self.env: Dict[str, Optional[Unit]] = {}
        self.findings: list[Finding] = []
        #: Node ids already checked, so re-inference never double-reports.
        self._checked: set[int] = set()

    # -- inference -------------------------------------------------------

    def infer(self, node: ast.expr) -> Optional[Unit]:
        """Unit of an expression, or None when unknown."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(
                node.value, bool
            ):
                # Zero is the one scalar valid in any unit (sign checks like
                # ``width <= 0`` are dimensionally sound), so leave it unknown.
                if node.value == 0:
                    return None
                return DIMENSIONLESS
            return None
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            return self.infer(node.operand)
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            resolved = self.project.resolve_name(self.symbols, node.id)
            if resolved is not None:
                return self.project.constant_unit(*resolved)
            return None
        if isinstance(node, ast.Attribute):
            return self.project.attribute_unit(node.attr)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.IfExp):
            a, b = self.infer(node.body), self.infer(node.orelse)
            return a if a == b else None
        return None

    def _infer_call(self, node: ast.Call) -> Optional[Unit]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _PASSTHROUGH_CALLS and len(node.args) == 1:
                return self.infer(node.args[0])
            resolved = self.project.resolve_name(self.symbols, func.id)
            if resolved is not None:
                return self.project.return_unit(*resolved)
            return self.project.return_unit(self.symbols.module, func.id)
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            module = self.symbols.imported_modules.get(func.value.id)
            if module is not None:
                return self.project.return_unit(module, func.attr)
        return None

    def _infer_binop(self, node: ast.BinOp) -> Optional[Unit]:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_mix(node, left, right, "arithmetic")
            if left is not None and right is not None and left == right:
                return left
            return None
        if isinstance(node.op, ast.Mult):
            if left is not None and right is not None:
                return left * right
            return None
        if isinstance(node.op, ast.Div):
            if left is not None and right is not None:
                return left / right
            return None
        if isinstance(node.op, ast.Pow):
            exponent = node.right
            if (
                left is not None
                and isinstance(exponent, ast.Constant)
                and isinstance(exponent.value, int)
            ):
                return left ** exponent.value
            if left is not None and left.dimensionless:
                return DIMENSIONLESS
            return None
        return None

    def _check_mix(
        self,
        node: ast.AST,
        left: Optional[Unit],
        right: Optional[Unit],
        kind: str,
    ) -> None:
        if id(node) in self._checked:
            return
        self._checked.add(id(node))
        if left is None or right is None or left == right:
            return
        self.findings.append(
            self.rule.finding(
                self.ctx,
                node,
                f"incompatible units in {kind}: "
                f"[{format_unit(left)}] vs [{format_unit(right)}]",
            )
        )

    # -- statement walk ---------------------------------------------------

    def walk_body(self, body: list) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            sub = UnitInferencer(
                self.rule, self.ctx, self.symbols, self.project
            )
            sub.bind_defaults(stmt)
            sub.walk_body(stmt.body)
            self.findings.extend(sub.findings)
            return
        if isinstance(stmt, ast.ClassDef):
            for inner in stmt.body:
                self._walk_stmt(inner)
            return
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            unit = self._visit_expr(stmt.value)
            if isinstance(target, ast.Name):
                # A [unit: ...] tag on the assignment wins over the literal's
                # (dimensionless) unit -- that is the tag's whole point.
                tagged = self.symbols.constant_units.get(target.id)
                self._bind(target.id, tagged if tagged is not None else unit)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            unit = self._visit_expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                tagged = self.symbols.constant_units.get(stmt.target.id)
                self._bind(
                    stmt.target.id, tagged if tagged is not None else unit
                )
            return
        if isinstance(stmt, ast.AugAssign):
            self._visit_expr(stmt.value)
            return
        # Generic statement: visit every contained expression, and recurse
        # into nested statement bodies.
        for field_value in ast.iter_child_nodes(stmt):
            if isinstance(field_value, ast.expr):
                self._visit_expr(field_value)
            elif isinstance(field_value, ast.stmt):
                self._walk_stmt(field_value)
            elif isinstance(field_value, ast.excepthandler):
                for inner in field_value.body:
                    self._walk_stmt(inner)
            elif isinstance(field_value, ast.withitem):
                self._visit_expr(field_value.context_expr)

    def bind_defaults(self, func: ast.FunctionDef) -> None:
        """Give parameters the unit of their (inferable) default value."""
        args = func.args
        positional = args.posonlyargs + args.args
        defaults = args.defaults
        if defaults:
            for arg, default in zip(positional[-len(defaults):], defaults):
                self._bind(arg.arg, self.infer(default))
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None:
                self._bind(arg.arg, self.infer(kw_default))

    def _bind(self, name: str, unit: Optional[Unit]) -> None:
        if name in self.env and self.env[name] != unit:
            self.env[name] = None  # conflicting rebind: give up on the name
        else:
            self.env[name] = unit

    def _visit_expr(self, node: ast.expr) -> Optional[Unit]:
        """Infer the expression and check every +,-,comparison inside it.

        ``infer`` only recurses along inferable paths, so additions buried in
        e.g. call arguments are checked explicitly here.
        """
        for sub in ast.walk(node):
            if isinstance(sub, ast.Compare):
                self._check_compare(sub)
            elif isinstance(sub, ast.BinOp) and isinstance(
                sub.op, (ast.Add, ast.Sub)
            ):
                self.infer(sub)
        return self.infer(node)

    def _check_compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                self._check_mix(
                    right, self.infer(left), self.infer(right), "comparison"
                )


@register
class UnitsRule(Rule):
    """R1: unit-tag coverage on constants plus dimensional consistency."""

    id = "R1"
    name = "units"
    description = (
        "module constants in physics modules must carry [unit: ...] tags; "
        "+, - and comparisons must not mix incompatible units"
    )

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        symbols = project.modules[ctx.module]
        if project.in_unit_scope(ctx):
            yield from self._check_tags(ctx, symbols)
        inferencer = UnitInferencer(self, ctx, symbols, project)
        inferencer.walk_body(ctx.tree.body)
        yield from inferencer.findings

    def _check_tags(
        self, ctx: FileContext, symbols: ModuleSymbols
    ) -> Iterator[Finding]:
        for node in ctx.tree.body:
            targets: list = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_numeric_literal(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if not _CONST_NAME_RE.match(target.id):
                    continue
                if target.id in symbols.constant_units:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"constant {target.id} in a unit-scoped module has no "
                    f"[unit: ...] tag (use [unit: 1] for dimensionless)",
                )
