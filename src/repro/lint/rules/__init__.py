"""Rule modules; importing this package registers every rule.

Adding a rule: create a module here with a :class:`~repro.lint.core.Rule`
subclass decorated with :func:`~repro.lint.core.register`, then import it
below.  Ids are ``R<n>``; keep them stable -- suppression comments and CI
logs refer to them.
"""

from __future__ import annotations

from . import (  # noqa: F401  (import for registration side effect)
    cache_keys,
    determinism,
    error_discipline,
    persistence,
    pool_safety,
    sparse_patterns,
    telemetry_names,
    units_rule,
    unit_flow,
)
