"""R7 -- telemetry name hygiene.

Every span, counter, timer, histogram, and run-event name must be a
dot-namespaced **string literal** declared once in the registry module
:mod:`repro.telemetry.names`.  A dynamic or undeclared name silently forks
the metric namespace: dashboards and the run-log analyzer group by exact
name, so ``"thermal.solves"`` vs ``"thermal.solve"`` (or a name built at
runtime) splits one series into several that never line up.

The rule inspects the first positional argument of the emitting calls:

* ``profiling.increment / add_time / timer / observe``
* ``telemetry.span / instant`` (also receivers ``spans`` / ``runlog``)
* ``runlog.emit_event`` and bare ``span(...)`` / ``instant(...)`` /
  ``emit_event(...)`` (the ``from ..telemetry import span`` idiom)
* ``promexpo.gauge`` and bare ``gauge(...)`` (Prometheus gauge samples;
  names live in ``GAUGE_NAMES``)

and requires it to be a lowercase dot-namespaced literal registered in
:data:`repro.telemetry.names.REGISTERED_NAMES`.  Dynamic *families* are
allowed only as f-strings whose literal prefix ends exactly at a registered
wildcard boundary (``f"faults.injected.{kind}"`` for ``faults.injected.*``).

The registry is loaded lazily through :mod:`importlib` so the lint package
keeps its stdlib-only import graph; a module may opt out wholesale by
declaring ``repro-lint-scope: telemetry-unregistered`` (fixtures exercising
the rule itself).
"""

from __future__ import annotations

import ast
import importlib
import re
from typing import Any, Iterator, Optional, Tuple

from ..core import FileContext, Finding, Rule, register
from ..symbols import Project

#: Receiver names whose emitting methods this rule tracks.
_RECEIVERS = frozenset({"profiling", "telemetry", "runlog", "spans", "promexpo"})

#: Emitting methods on those receivers (first positional arg is the name).
_METHODS = frozenset(
    {
        "increment",
        "add_time",
        "timer",
        "observe",
        "span",
        "instant",
        "emit_event",
        "gauge",
    }
)

#: Bare function names tracked when imported directly
#: (``from ..telemetry import span``).
_BARE_FUNCTIONS = frozenset({"span", "instant", "emit_event", "gauge"})

#: ``subsystem.noun[.qualifier]`` -- lowercase segments, dots between them.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

_REGISTRY_MODULE = "repro.telemetry.names"


def _registry() -> Optional[Any]:
    """The :mod:`repro.telemetry.names` module, or ``None`` off-path."""
    try:
        return importlib.import_module(_REGISTRY_MODULE)
    except ImportError:
        return None


def _call_name(node: ast.Call) -> Optional[str]:
    """The tracked call's display name, or ``None`` when untracked."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _METHODS
        and isinstance(func.value, ast.Name)
        and func.value.id in _RECEIVERS
    ):
        return f"{func.value.id}.{func.attr}"
    if isinstance(func, ast.Name) and func.id in _BARE_FUNCTIONS:
        return func.id
    return None


def _fstring_prefix(node: ast.JoinedStr) -> Tuple[str, bool]:
    """Leading literal text of an f-string and whether anything follows it."""
    prefix = ""
    for index, value in enumerate(node.values):
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            if index == 0:
                prefix = value.value
            continue
        return prefix, True
    return prefix, False


@register
class TelemetryNamesRule(Rule):
    """R7: telemetry names are registered dot-namespaced literals."""

    id = "R7"
    name = "telemetry-names"
    description = (
        "span/metric/run-event names passed to profiling.*, telemetry.span/"
        "instant, and runlog.emit_event must be dot-namespaced string "
        "literals declared in repro.telemetry.names (f-strings only for "
        "registered wildcard prefixes)"
    )

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        if "telemetry-unregistered" in ctx.scopes:
            return
        registry = _registry()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            call = _call_name(node)
            if call is None:
                continue
            yield from self._check_call(ctx, node, call, registry)

    def _check_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        call: str,
        registry: Optional[Any],
    ) -> Iterator[Finding]:
        if not node.args:
            yield self.finding(
                ctx,
                node,
                f"{call}(...) must pass the telemetry name as its first "
                f"positional argument (a string literal)",
            )
            return
        arg = node.args[0]
        if isinstance(arg, ast.JoinedStr):
            yield from self._check_fstring(ctx, node, call, arg, registry)
            return
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            yield self.finding(
                ctx,
                node,
                f"{call}(...) name must be a dot-namespaced string literal "
                f"from repro.telemetry.names, not a dynamic expression "
                f"(dynamic families go through a registered wildcard prefix)",
            )
            return
        name = arg.value
        if not _NAME_RE.match(name):
            yield self.finding(
                ctx,
                node,
                f"{call}({name!r}): telemetry names are dot-namespaced "
                f"(lowercase `subsystem.noun[.qualifier]`, at least two "
                f"segments)",
            )
            return
        if registry is not None and not registry.is_registered(name):
            yield self.finding(
                ctx,
                node,
                f"{call}({name!r}): name is not declared in "
                f"repro.telemetry.names; register it in SPAN_NAMES / "
                f"METRIC_NAMES / EVENT_TYPES (or a wildcard prefix) so the "
                f"namespace stays documented",
            )

    def _check_fstring(
        self,
        ctx: FileContext,
        node: ast.Call,
        call: str,
        arg: ast.JoinedStr,
        registry: Optional[Any],
    ) -> Iterator[Finding]:
        prefix, dynamic = _fstring_prefix(arg)
        if not dynamic:
            # All-literal f-string: treat like a plain constant.
            fake = ast.Constant(value=prefix)
            ast.copy_location(fake, arg)
            replaced = ast.Call(
                func=node.func, args=[fake] + node.args[1:],
                keywords=node.keywords,
            )
            ast.copy_location(replaced, node)
            yield from self._check_call(ctx, replaced, call, registry)
            return
        if registry is None:
            return
        boundaries = {
            pattern[:-1] for pattern in registry.WILDCARD_PREFIXES
        }
        if prefix not in boundaries:
            yield self.finding(
                ctx,
                node,
                f"{call}(f\"{prefix}...\"): f-string telemetry names are "
                f"only allowed when the literal prefix ends exactly at a "
                f"wildcard boundary registered in repro.telemetry.names "
                f"(WILDCARD_PREFIXES)",
            )
