"""R6 -- atomic persistence.

Run artifacts (checkpoints, benchmark JSON, any serialized state another
process or a resumed run will read back) must never be written in place: a
crash between ``open(..., "w")`` truncating the file and the final flush
leaves a torn artifact that a later reader half-parses.  The sanctioned
primitives live in :mod:`repro.checkpoint` -- ``atomic_write_json`` /
``atomic_write_text`` / ``atomic_write_bytes`` (temp file + fsync +
``os.replace``) for plain artifacts and ``write_checkpoint`` for validated
resume state.

The rule flags direct serialization-to-file shapes:

* ``json.dump(obj, fh)`` / ``pickle.dump(obj, fh)`` -- streaming a
  serializer straight into an (almost always truncate-mode) file handle;
* ``path.write_text(json.dumps(obj))`` and ``fh.write(json.dumps(obj))``
  (likewise ``pickle.dumps``) -- the one-liner variant of the same tear.

Serializing to a *string* for anything else (stdout, sockets, asserts) is
fine; only the write-to-file shapes are flagged.  :mod:`repro.checkpoint`
itself (prefix match, like ``repro.faults`` in R4) is exempt -- it is where
the atomic primitives are implemented -- as is any module whose docstring
declares ``repro-lint-scope: atomic-io``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..core import FileContext, Finding, Rule, register
from ..symbols import Project

#: Module prefix allowed to open run artifacts directly: the package that
#: implements the atomic-write primitives.
BOUNDARY_MODULE = "repro.checkpoint"

#: Serializer modules whose ``dump``/``dumps`` this rule tracks.
_SERIALIZER_MODULES = frozenset({"json", "pickle"})

#: Receiver methods that persist their argument to a file.
_WRITE_METHODS = frozenset({"write", "write_text", "write_bytes"})


def _serializer_of(node: ast.expr, attr: str) -> Optional[str]:
    """``"json"``/``"pickle"`` when ``node`` is ``json.<attr>(...)`` etc."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == attr
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in _SERIALIZER_MODULES
    ):
        return node.func.value.id
    return None


@register
class AtomicPersistenceRule(Rule):
    """R6: run artifacts go through repro.checkpoint's atomic writes."""

    id = "R6"
    name = "atomic-persistence"
    description = (
        "no json.dump/pickle.dump (or .write/.write_text of json.dumps/"
        "pickle.dumps) straight into files; persist run artifacts through "
        "repro.checkpoint's atomic_write_* / write_checkpoint"
    )

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        module = ctx.module
        if (
            module == BOUNDARY_MODULE
            or module.startswith(BOUNDARY_MODULE + ".")
            or "atomic-io" in ctx.scopes
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            serializer = _serializer_of(node, "dump")
            if serializer is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"{serializer}.dump() streams into a live file and "
                    f"tears on crash; build the artifact in memory and "
                    f"persist it with repro.checkpoint.atomic_write_json / "
                    f"write_checkpoint",
                )
                continue
            yield from self._check_written_dumps(ctx, node)

    def _check_written_dumps(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Finding]:
        """Flag ``<target>.write*(json.dumps(...))`` shapes."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _WRITE_METHODS:
            return
        for arg in node.args:
            serializer = self._dumps_in(arg)
            if serializer is not None:
                yield self.finding(
                    ctx,
                    node,
                    f".{func.attr}({serializer}.dumps(...)) overwrites the "
                    f"artifact in place; use repro.checkpoint."
                    f"atomic_write_json (or atomic_write_text/_bytes) so a "
                    f"crash never leaves a torn file",
                )

    def _dumps_in(self, node: ast.expr) -> Optional[str]:
        """The serializer behind ``node`` when it is built from ``dumps``.

        Sees through the common decorations (``json.dumps(...) + "\\n"``,
        ``json.dumps(...).encode()``) so appending a newline does not hide
        the pattern.
        """
        direct = _serializer_of(node, "dumps")
        if direct is not None:
            return direct
        if isinstance(node, ast.BinOp):
            return self._dumps_in(node.left) or self._dumps_in(node.right)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            # json.dumps(...).encode() and friends.
            return self._dumps_in(node.func.value)
        return None
