"""R2 -- cache-key hygiene.

Raw floats must never key a cache: two probes that differ by floating-point
noise would miss each other, silently doubling solver work (or worse,
unbounded cache growth).  The sanctioned path is
:func:`repro.constants.quantize_key`, which rounds to
``PRESSURE_KEY_DECIMALS`` before the float touches a key.

The rule recognizes *key contexts*:

* assignments to a name containing ``key``,
* subscripts on receivers whose name contains ``cache`` or ``memo``,
* ``.get`` / ``.setdefault`` / ``.pop`` first arguments on such receivers,
* ``in`` / ``not in`` membership tests against such receivers,
* arguments of ``hash(...)``,

and inside them flags ``round(...)`` calls (ad-hoc quantization),
``float(...)`` calls, float literals, and names whose enclosing-function
parameter annotation is ``float`` / ``Optional[float]``.  Anything already
wrapped in ``quantize_key(...)`` -- or reduced to an int via ``int(...)`` /
``id(...)`` / ``len(...)`` -- passes.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional

from ..core import FileContext, Finding, Rule, register
from ..symbols import Project

_KEY_NAME_RE = re.compile(r"(^|_)key(_|s$|$)", re.IGNORECASE)
_CACHE_NAME_RE = re.compile(r"cache|memo", re.IGNORECASE)

#: Calls whose result is a safe (non-float) key component.
_SAFE_CALLS = {"quantize_key", "int", "id", "len", "str", "repr", "tuple"}

#: Keyed-access methods whose first argument is a key.
_KEY_METHODS = {"get", "setdefault", "pop"}


def _expr_name(node: ast.expr) -> Optional[str]:
    """The trailing identifier of a Name/Attribute chain (``self._cache``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _float_annotation(annotation: Optional[ast.expr]) -> bool:
    """Whether an annotation spells ``float`` or ``Optional[float]``."""
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "float"
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        return "float" in annotation.value
    if isinstance(annotation, ast.Subscript):
        base = _expr_name(annotation.value)
        if base in ("Optional", "Union"):
            for sub in ast.walk(annotation.slice):
                if isinstance(sub, ast.Name) and sub.id == "float":
                    return True
    return False


@register
class CacheKeyRule(Rule):
    """R2: raw floats in cache keys must go through ``quantize_key``."""

    id = "R2"
    name = "cache-keys"
    description = (
        "floats used as cache/dict keys (or hashed) must be quantized via "
        "repro.constants.quantize_key, never round()/float()/raw"
    )

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        yield from self._walk(ctx, ctx.tree.body, {})

    # -- traversal -------------------------------------------------------

    def _walk(
        self,
        ctx: FileContext,
        body: List[ast.stmt],
        float_params: Dict[str, bool],
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = {
                    arg.arg: True
                    for arg in (
                        stmt.args.posonlyargs
                        + stmt.args.args
                        + stmt.args.kwonlyargs
                    )
                    if _float_annotation(arg.annotation)
                }
                yield from self._walk(ctx, stmt.body, params)
                continue
            if isinstance(stmt, ast.ClassDef):
                yield from self._walk(ctx, stmt.body, float_params)
                continue
            yield from self._check_stmt(ctx, stmt, float_params)
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    yield from self._walk(ctx, [child], float_params)
                elif isinstance(child, ast.excepthandler):
                    yield from self._walk(ctx, child.body, float_params)

    def _check_stmt(
        self,
        ctx: FileContext,
        stmt: ast.stmt,
        float_params: Dict[str, bool],
    ) -> Iterator[Finding]:
        # Key contexts from assignments: ``key = ...`` / ``self.key = ...``.
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                name = _expr_name(target)
                if name is not None and _KEY_NAME_RE.search(name):
                    yield from self._scan_key_expr(
                        ctx, stmt.value, float_params, f"key {name!r}"
                    )
        # Every expression directly attached to this statement (nested
        # statements are visited on their own): subscripts, .get(), in, hash().
        for child in ast.iter_child_nodes(stmt):
            if not isinstance(child, ast.expr):
                continue
            for node in ast.walk(child):
                if isinstance(node, ast.expr):
                    yield from self._check_expr(ctx, node, float_params)

    def _check_expr(
        self,
        ctx: FileContext,
        node: ast.expr,
        float_params: Dict[str, bool],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Subscript):
            receiver = _expr_name(node.value)
            if receiver is not None and _CACHE_NAME_RE.search(receiver):
                yield from self._scan_key_expr(
                    ctx, node.slice, float_params, f"{receiver}[...] key"
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _KEY_METHODS
                and node.args
            ):
                receiver = _expr_name(func.value)
                if receiver is not None and _CACHE_NAME_RE.search(receiver):
                    yield from self._scan_key_expr(
                        ctx,
                        node.args[0],
                        float_params,
                        f"{receiver}.{func.attr}() key",
                    )
            elif (
                isinstance(func, ast.Name)
                and func.id == "hash"
                and node.args
            ):
                yield from self._scan_key_expr(
                    ctx, node.args[0], float_params, "hash() argument"
                )
        elif isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.In, ast.NotIn)):
                    receiver = _expr_name(comparator)
                    if receiver is not None and _CACHE_NAME_RE.search(
                        receiver
                    ):
                        yield from self._scan_key_expr(
                            ctx,
                            node.left,
                            float_params,
                            f"membership test against {receiver}",
                        )

    # -- the actual float hunt -------------------------------------------

    def _scan_key_expr(
        self,
        ctx: FileContext,
        expr: ast.expr,
        float_params: Dict[str, bool],
        where: str,
    ) -> Iterator[Finding]:
        for node in self._iter_unsafe(expr):
            if isinstance(node, ast.Call):
                callee = _expr_name(node.func) or "<call>"
                if callee == "round":
                    yield self.finding(
                        ctx,
                        node,
                        f"ad-hoc round() quantization in {where}; use "
                        f"repro.constants.quantize_key() instead",
                    )
                elif callee == "float":
                    yield self.finding(
                        ctx,
                        node,
                        f"raw float(...) in {where}; wrap it in "
                        f"quantize_key() before keying",
                    )
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, float
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"float literal {node.value!r} in {where}; quantize or "
                    f"use an exact (int/str) key",
                )
            elif isinstance(node, ast.Name) and float_params.get(node.id):
                yield self.finding(
                    ctx,
                    node,
                    f"float-typed name {node.id!r} in {where}; wrap it in "
                    f"quantize_key()",
                )

    def _iter_unsafe(self, expr: ast.expr) -> Iterator[ast.expr]:
        """Walk a key expression, pruning safely-wrapped subtrees."""
        if isinstance(expr, ast.Call):
            callee = _expr_name(expr.func)
            if callee in _SAFE_CALLS:
                return
            if callee in ("round", "float"):
                yield expr  # flagged as a whole; no need to descend
                return
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr) and child is not expr.func:
                    yield from self._iter_unsafe(child)
            return
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                yield from self._iter_unsafe(element)
            return
        if isinstance(expr, ast.IfExp):
            yield from self._iter_unsafe(expr.body)
            yield from self._iter_unsafe(expr.orelse)
            return
        yield expr
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                yield from self._iter_unsafe(child)
