"""R8 -- interprocedural unit inference.

R1 checks unit algebra *inside* one expression; R8 makes units flow across
function boundaries, powered by the :mod:`repro.lint.dataflow` framework
and the project call graph.  Three checks:

* **Signature coverage**: a public top-level function in a unit-scoped
  module (same scope as R1) with ``float``-annotated parameters or return
  must declare their units in its docstring -- parameter lines shaped like
  ``p_sys: ... [unit: Pa]`` and a ``[unit-return: ...]`` tag.  A
  deliberately unit-polymorphic signature uses ``[unit: any]`` /
  ``[unit-return: any]`` (e.g. ``quantize_key``, which accepts a float in
  any unit).

* **Call-site compatibility**: at every call that resolves to a function
  with declared parameter units, each argument whose unit can be inferred
  (tagged constants, parameter tags of the *enclosing* function, unit
  algebra over ``* / **``) must match the declared unit -- passing a
  thermal resistance (K/W) into a conductance parameter (W/K) is exactly
  the bug this catches, and it works across modules because the symbol
  table is project-wide.

* **Return consistency**: a function declaring ``[unit-return: X]`` whose
  return expression infers to a different unit is flagged at the return
  statement -- the tag and the code cannot both be right.

Inference never guesses: an argument or return whose unit cannot be
derived is silently skipped, so untagged code stays quiet (the coverage
check, not noise, is what drives tagging).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..core import FileContext, Finding, Rule, register
from ..dataflow import ForwardDataflow
from ..symbols import (
    ModuleSymbols,
    Project,
    _docstring_param_units,
    safe_parse_unit,
)
from ..units import DIMENSIONLESS, Unit, format_unit

#: Builtins that return their (single) argument's unit unchanged.
_PASSTHROUGH_CALLS = {"float", "abs", "min", "max", "sum", "round"}


def _is_float_annotation(annotation: Optional[ast.expr]) -> bool:
    return isinstance(annotation, ast.Name) and annotation.id == "float"


class UnitFlow(ForwardDataflow[Unit]):
    """Unit-valued dataflow over one function or module body."""

    def __init__(
        self,
        rule: "UnitFlowRule",
        ctx: FileContext,
        symbols: ModuleSymbols,
        project: Project,
        findings: List[Finding],
    ) -> None:
        super().__init__()
        self.rule = rule
        self.ctx = ctx
        self.symbols = symbols
        self.project = project
        self.findings = findings
        #: Declared return unit of the function being walked, if any.
        self.declared_return: Optional[Unit] = None

    # -- function entry --------------------------------------------------

    def seed_function(self, node: ast.FunctionDef) -> None:
        """Bind declared parameter units (tags win over default values)."""
        args = node.args
        positional = args.posonlyargs + args.args
        if args.defaults:
            for arg, default in zip(
                positional[-len(args.defaults):], args.defaults
            ):
                self.env[arg.arg] = self.eval(default)
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None:
                self.env[arg.arg] = self.eval(kw_default)
        for param, unit in _docstring_param_units(node).items():
            if unit is not None:
                self.env[param] = unit
        tag = FileContext.unit_return_tag(node)
        if tag is not None and tag != "any":
            self.declared_return = safe_parse_unit(tag)

    def enter_function(self, node: ast.FunctionDef) -> None:
        sub = UnitFlow(
            self.rule, self.ctx, self.symbols, self.project, self.findings
        )
        sub.seed_function(node)
        sub.walk(node.body)

    # -- value hooks -------------------------------------------------------

    def eval_constant(self, node: ast.Constant) -> Optional[Unit]:
        if isinstance(node.value, bool) or not isinstance(
            node.value, (int, float)
        ):
            return None
        # Zero is the one scalar valid in any unit; leave it unknown.
        if node.value == 0:
            return None
        return DIMENSIONLESS

    def eval_name(self, node: ast.Name) -> Optional[Unit]:
        resolved = self.project.resolve_name(self.symbols, node.id)
        if resolved is not None:
            return self.project.constant_unit(*resolved)
        return None

    def eval_attribute(
        self, node: ast.Attribute, value: Optional[Unit]
    ) -> Optional[Unit]:
        # ``module.CONSTANT`` across an ``import module`` binding.
        if isinstance(node.value, ast.Name):
            module = self.symbols.imported_modules.get(node.value.id)
            if module is not None:
                unit = self.project.constant_unit(module, node.attr)
                if unit is not None:
                    return unit
        return self.project.attribute_unit(node.attr)

    def eval_call(
        self, node: ast.Call, args: List[Optional[Unit]]
    ) -> Optional[Unit]:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _PASSTHROUGH_CALLS
            and len(node.args) == 1
            and not node.keywords
        ):
            return args[0] if args else None
        resolved = self.project.resolve_call(self.symbols, node)
        if resolved is None:
            return None
        self._check_call_args(node, args, resolved)
        module, name = resolved
        symbols = self.project.modules.get(module)
        if symbols is not None and name in symbols.polymorphic_returns:
            # A polymorphic function's return unit is its argument's when
            # there is exactly one (the quantize_key shape).
            if len(node.args) == 1 and not node.keywords:
                return args[0]
            return None
        return self.project.return_unit(module, name)

    def eval_binop(
        self, node: ast.BinOp, left: Optional[Unit], right: Optional[Unit]
    ) -> Optional[Unit]:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and left == right:
                return left
            return None
        if isinstance(node.op, ast.Mult):
            if left is not None and right is not None:
                return left * right
            return None
        if isinstance(node.op, ast.Div):
            if left is not None and right is not None:
                return left / right
            return None
        if isinstance(node.op, ast.Pow):
            exponent = node.right
            if (
                left is not None
                and isinstance(exponent, ast.Constant)
                and isinstance(exponent.value, int)
                and not isinstance(exponent.value, bool)
            ):
                return left ** exponent.value
            if left is not None and left.dimensionless:
                return DIMENSIONLESS
            return None
        return None

    def eval_ifexp(self, node: ast.IfExp) -> Optional[Unit]:
        a, b = self.eval(node.body), self.eval(node.orelse)
        return a if a == b else None

    # -- checks ------------------------------------------------------------

    def _check_call_args(
        self,
        node: ast.Call,
        args: List[Optional[Unit]],
        resolved: Tuple[str, str],
    ) -> None:
        module, name = resolved
        declared = self.project.param_units(module, name)
        if not declared:
            return
        found = self.project.function_def(module, name)
        if found is None:
            return
        _, func = found
        params = [a.arg for a in func.args.posonlyargs + func.args.args]
        pairs: List[Tuple[str, Optional[Unit], ast.expr]] = []
        for index, arg_node in enumerate(node.args):
            if isinstance(arg_node, ast.Starred) or index >= len(params):
                break
            pairs.append((params[index], args[index], arg_node))
        for keyword in node.keywords:
            if keyword.arg is not None:
                pairs.append(
                    (keyword.arg, self.eval(keyword.value), keyword.value)
                )
        for param, actual, arg_node in pairs:
            if param not in declared or actual is None:
                continue
            expected = declared[param]
            if expected is None or expected == actual:
                continue
            self.findings.append(
                self.rule.finding(
                    self.ctx,
                    arg_node,
                    f"argument {param!r} to {module}.{name} has unit "
                    f"[{format_unit(actual)}] but the parameter is declared "
                    f"[{format_unit(expected)}]",
                )
            )

    def on_return(self, node: ast.Return, value: Optional[Unit]) -> None:
        if (
            self.declared_return is not None
            and value is not None
            and value != self.declared_return
        ):
            self.findings.append(
                self.rule.finding(
                    self.ctx,
                    node,
                    f"return value infers to [{format_unit(value)}] but the "
                    f"function declares [unit-return: "
                    f"{format_unit(self.declared_return)}]",
                )
            )


@register
class UnitFlowRule(Rule):
    """R8: whole-program unit inference across call/return edges."""

    id = "R8"
    name = "unit-flow"
    description = (
        "float signatures in unit-scoped modules carry docstring unit tags; "
        "call arguments and returns must match the declared units"
    )

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        symbols = project.modules[ctx.module]
        if project.in_unit_scope(ctx):
            yield from self._check_coverage(ctx, symbols)
        findings: List[Finding] = []
        flow = UnitFlow(self, ctx, symbols, project, findings)
        flow.walk(ctx.tree.body)
        yield from findings

    def _check_coverage(
        self, ctx: FileContext, symbols: ModuleSymbols
    ) -> Iterator[Finding]:
        for name, node in symbols.functions.items():
            if name.startswith("_"):
                continue
            declared = symbols.param_units.get(name, {})
            args = node.args
            missing = [
                a.arg
                for a in args.posonlyargs + args.args + args.kwonlyargs
                if _is_float_annotation(a.annotation) and a.arg not in declared
            ]
            needs_return = (
                _is_float_annotation(node.returns)
                and name not in symbols.return_units
                and name not in symbols.polymorphic_returns
            )
            if not missing and not needs_return:
                continue
            parts = []
            if missing:
                parts.append(
                    "[unit: ...] docstring tags for parameter(s) "
                    + ", ".join(missing)
                )
            if needs_return:
                parts.append("a [unit-return: ...] docstring tag")
            yield self.finding(
                ctx,
                node,
                f"public function {name} in a unit-scoped module is missing "
                + " and ".join(parts)
                + " (use [unit: any] for deliberately polymorphic floats)",
            )
