"""R9 -- determinism-taint analysis.

The reproduction's core promise is bit-identical reruns: the SA schedule is
seeded, cache keys are quantized, checkpoints resume mid-anneal.  One
``time.time()`` laundered through a helper into a cache key silently breaks
all of it.  R9 tracks *nondeterminism taint* through the dataflow framework
(:mod:`repro.lint.dataflow`) and flags tainted values reaching a
determinism-sensitive sink.

Sources (each labels the value with a taint tag):

* wall-clock reads: ``time.time/time_ns/perf_counter/monotonic``
* entropy: ``os.urandom``, ``uuid.uuid4``
* process identity: ``os.getpid``
* object identity: ``id(...)`` (varies across runs and across processes)
* unseeded RNG: module-level ``random.*`` calls, ``numpy.random.*`` legacy
  calls, and ``default_rng()`` / ``random.Random()`` *without* a seed
  argument (seeded constructions are deterministic and stay clean)
* set iteration order: ``set`` displays, ``set()`` calls, and set
  comprehensions carry an ``unordered`` tag that survives iteration and
  ``list()``/``tuple()`` materialization (``frozenset`` hashing is
  order-independent and stays clean)

Sanitizers: ``sorted(...)`` erases ``unordered``; order-insensitive folds
(``len``/``sum``/``min``/``max``) do too.

Sinks (a tainted value arriving here is a finding):

* cache keys -- ``hash(...)``, subscript reads/writes and ``.get``/
  ``.setdefault``/``.pop`` on containers named ``*cache*``/``*memo*``, and
  arguments to ``quantize_key`` or any ``*cache_key*`` helper
* checkpoint state -- arguments to the resumable-state constructors
  (``RunState``, ``StageCursor``, ``DirectionCursor``, ``EvaluatorState``):
  whatever goes in is replayed on resume, so it must be derivable
* telemetry run events -- arguments to ``emit_event`` from non-boundary
  modules (the telemetry package itself stamps wall time on purpose)
* SA scoring -- ``return`` values of scoring functions (name matching
  score/evaluate/cost/energy/objective) in ``repro.optimize`` or a module
  declaring ``repro-lint-scope: sa-scoring``

Taint crosses function boundaries: per-function summaries (intrinsic taint
plus which parameters pass through to the return value) are computed over
the project call graph in callee-first order, so a helper that merely
*returns* ``time.time()`` taints every caller.  Modules under
``repro.telemetry``, ``repro.profiling``, and ``repro.faults`` -- or any
module declaring ``repro-lint-scope: determinism-boundary`` -- are
sanctioned: the rule skips their bodies and treats their functions' returns
as clean, the same whole-segment prefix convention R4 uses.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..core import FileContext, Finding, Rule, register
from ..dataflow import ForwardDataflow
from ..symbols import ModuleSymbols, Project

#: Taint tags (human-readable; they appear in finding messages).
WALL_CLOCK = "wall-clock"
ENTROPY = "entropy"
PID = "process-id"
OBJECT_ID = "object-identity"
RNG = "unseeded-rng"
UNORDERED = "set-order"

Taint = FrozenSet[str]

#: Modules sanctioned to touch nondeterministic values: telemetry stamps
#: wall time on events, profiling measures it, fault injection draws from
#: its own seeded-but-chaotic machinery.  Submodules covered (prefix match),
#: plus any module declaring ``repro-lint-scope: determinism-boundary``.
BOUNDARY_MODULES = ("repro.telemetry", "repro.profiling", "repro.faults")

#: ``time`` attributes that read a clock.
_CLOCK_CALLS = frozenset(
    {"time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
     "monotonic_ns", "clock_gettime"}
)

#: Resumable-state constructors (checkpoint sinks).
_STATE_CONSTRUCTORS = frozenset(
    {"RunState", "StageCursor", "DirectionCursor", "EvaluatorState"}
)

#: Scoring-function names (SA objective sinks).
_SCORING_NAME_RE = re.compile(r"score|evaluate|cost|energy|objective")

#: Cache-container names (same heuristic family as R2).
_CACHE_NAME_RE = re.compile(r"cache|memo", re.IGNORECASE)

#: Mapping-access methods whose first argument is a key.
_KEYED_METHODS = frozenset({"get", "setdefault", "pop"})

#: Builtins that fold an iterable order-insensitively.
_ORDER_INSENSITIVE = frozenset({"len", "sum", "min", "max", "frozenset"})


def is_boundary(ctx: FileContext) -> bool:
    """Whether the module is a sanctioned nondeterminism boundary."""
    if "determinism-boundary" in ctx.scopes:
        return True
    return any(
        ctx.module == boundary or ctx.module.startswith(boundary + ".")
        for boundary in BOUNDARY_MODULES
    )


def _param_marker(index: int) -> str:
    return f"param:{index}"


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _container_name(node: ast.expr) -> Optional[str]:
    """The variable/attribute name a subscript or method call targets."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class TaintFlow(ForwardDataflow[Taint]):
    """Taint propagation over one body; sinks are added by the subclass."""

    def __init__(
        self,
        project: Project,
        symbols: ModuleSymbols,
        summaries: Dict[Tuple[str, str], Taint],
    ) -> None:
        super().__init__()
        self.project = project
        self.symbols = symbols
        self.summaries = summaries

    # -- taint lattice ---------------------------------------------------

    def join(self, a: Optional[Taint], b: Optional[Taint]) -> Optional[Taint]:
        if a is None:
            return b
        if b is None:
            return a
        return a | b

    # -- sources ---------------------------------------------------------

    def _resolved_module(self, name: str) -> Optional[str]:
        """The real module a local name refers to (``np`` -> ``numpy``)."""
        module = self.symbols.imported_modules.get(name)
        if module is not None:
            return module
        imported = self.symbols.imported_names.get(name)
        if imported is not None:
            return f"{imported[0]}.{imported[1]}"
        return None

    def _source_taint(self, node: ast.Call) -> Optional[Taint]:
        func = node.func
        if isinstance(func, ast.Name):
            target = self.symbols.imported_names.get(func.id)
            qualified = f"{target[0]}.{target[1]}" if target else func.id
            if func.id == "id":
                return frozenset({OBJECT_ID})
            if qualified in ("time.time", "time.perf_counter"):
                return frozenset({WALL_CLOCK})
            if qualified == "os.urandom":
                return frozenset({ENTROPY})
            if qualified == "os.getpid":
                return frozenset({PID})
            if qualified == "uuid.uuid4":
                return frozenset({ENTROPY})
            if qualified in ("numpy.random.default_rng", "random.Random"):
                return None if node.args else frozenset({RNG})
            if func.id == "set" or qualified == "builtins.set":
                return frozenset({UNORDERED})
            return None
        dotted = _dotted(func)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        module = self._resolved_module(root)
        if module is not None:
            dotted = f"{module}.{rest}" if rest else module
        if dotted.startswith("time.") and dotted.split(".")[-1] in _CLOCK_CALLS:
            return frozenset({WALL_CLOCK})
        if dotted == "os.urandom":
            return frozenset({ENTROPY})
        if dotted == "os.getpid":
            return frozenset({PID})
        if dotted == "uuid.uuid4":
            return frozenset({ENTROPY})
        if dotted in ("numpy.random.default_rng", "random.Random"):
            return None if node.args else frozenset({RNG})
        if dotted.startswith("random.") and dotted != "random.Random":
            return frozenset({RNG})
        if dotted.startswith("numpy.random."):
            return frozenset({RNG})
        return None

    # -- value hooks -----------------------------------------------------

    def eval(self, node: ast.expr) -> Optional[Taint]:
        # f-strings interpolate their taint into the result (the classic
        # tainted-cache-key shape); the base engine treats them as opaque.
        if isinstance(node, ast.JoinedStr):
            taint: Optional[Taint] = None
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    taint = self.join(taint, self.eval(value.value))
            return taint
        return super().eval(node)

    def eval_call(
        self, node: ast.Call, args: List[Optional[Taint]]
    ) -> Optional[Taint]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "sorted" and node.args:
                taint = args[0]
                if taint:
                    taint = taint - {UNORDERED}
                return taint or None
            if func.id in _ORDER_INSENSITIVE and len(node.args) == 1:
                taint = args[0]
                if taint:
                    taint = taint - {UNORDERED}
                return taint or None
            if func.id in ("list", "tuple") and len(node.args) == 1:
                return args[0]
            if func.id == "set":
                merged: Optional[Taint] = frozenset({UNORDERED})
                for taint in args:
                    merged = self.join(merged, taint)
                return merged
        source = self._source_taint(node)
        if source is not None:
            return source
        resolved = self.project.resolve_call(self.symbols, node)
        if resolved is None:
            return None
        summary = self.summaries.get(resolved)
        if summary is None:
            return None
        result: Optional[Taint] = (
            frozenset(t for t in summary if not t.startswith("param:"))
            or None
        )
        for tag in summary:
            if not tag.startswith("param:"):
                continue
            index = int(tag.partition(":")[2])
            actual = self._argument_taint(node, args, resolved, index)
            result = self.join(result, actual)
        return result

    def _argument_taint(
        self,
        node: ast.Call,
        args: List[Optional[Taint]],
        resolved: Tuple[str, str],
        index: int,
    ) -> Optional[Taint]:
        """Taint of the argument bound to parameter ``index`` at a call."""
        if index < len(node.args):
            if isinstance(node.args[index], ast.Starred):
                return None
            return args[index]
        found = self.project.function_def(*resolved)
        if found is None:
            return None
        _, func = found
        params = [a.arg for a in func.args.posonlyargs + func.args.args]
        if index >= len(params):
            return None
        for keyword in node.keywords:
            if keyword.arg == params[index]:
                return self.eval(keyword.value)
        return None

    def eval_binop(
        self, node: ast.BinOp, left: Optional[Taint], right: Optional[Taint]
    ) -> Optional[Taint]:
        return self.join(left, right)

    def eval_subscript(
        self,
        node: ast.Subscript,
        value: Optional[Taint],
        key: Optional[Taint],
    ) -> Optional[Taint]:
        return value

    def eval_display(
        self, node: ast.expr, elements: List[Optional[Taint]]
    ) -> Optional[Taint]:
        merged: Optional[Taint] = None
        for taint in elements:
            merged = self.join(merged, taint)
        if isinstance(node, ast.Set):
            merged = self.join(merged, frozenset({UNORDERED}))
        return merged

    def eval_comprehension(
        self, node: ast.expr, element: Optional[Taint]
    ) -> Optional[Taint]:
        if isinstance(node, ast.SetComp):
            return self.join(element, frozenset({UNORDERED}))
        return element

    def iter_element(
        self, node: ast.expr, iterable: Optional[Taint]
    ) -> Optional[Taint]:
        return iterable


class SummaryFlow(TaintFlow):
    """Computes one function's taint summary (returns only, no sinks)."""

    def __init__(
        self,
        project: Project,
        symbols: ModuleSymbols,
        summaries: Dict[Tuple[str, str], Taint],
        node: ast.FunctionDef,
    ) -> None:
        super().__init__(project, symbols, summaries)
        args = node.args
        params = args.posonlyargs + args.args
        for index, arg in enumerate(params):
            self.env[arg.arg] = frozenset({_param_marker(index)})
        self.result: Optional[Taint] = None

    def on_return(self, node: ast.Return, value: Optional[Taint]) -> None:
        if value:
            self.result = self.join(self.result, value)


def compute_summaries(project: Project) -> Dict[Tuple[str, str], Taint]:
    """Per-function taint summaries in callee-first order (cached per run)."""
    cached = getattr(project, "_taint_summaries", None)
    if cached is not None:
        return cached
    summaries: Dict[Tuple[str, str], Taint] = {}
    for module, name in project.callgraph.topological_order():
        symbols = project.modules[module]
        if is_boundary(symbols.ctx):
            continue  # sanctioned: callers see clean returns
        node = symbols.functions[name]
        flow = SummaryFlow(project, symbols, summaries, node)
        flow.walk(node.body)
        if flow.result:
            summaries[(module, name)] = flow.result
    project._taint_summaries = summaries
    return summaries


class TaintCheck(TaintFlow):
    """The checking walker: propagates taint and fires the sinks."""

    def __init__(
        self,
        rule: "DeterminismRule",
        ctx: FileContext,
        symbols: ModuleSymbols,
        project: Project,
        summaries: Dict[Tuple[str, str], Taint],
        findings: List[Finding],
        function_name: Optional[str] = None,
    ) -> None:
        super().__init__(project, symbols, summaries)
        self.rule = rule
        self.ctx = ctx
        self.findings = findings
        self.function_name = function_name

    def enter_function(self, node: ast.FunctionDef) -> None:
        sub = TaintCheck(
            self.rule,
            self.ctx,
            self.symbols,
            self.project,
            self.summaries,
            self.findings,
            function_name=node.name,
        )
        sub.walk(node.body)

    # -- sinks -----------------------------------------------------------

    def _report(self, node: ast.AST, taint: Taint, what: str) -> None:
        tags = ", ".join(sorted(taint))
        self.findings.append(
            self.rule.finding(
                self.ctx,
                node,
                f"nondeterministic value ({tags}) flows into {what}",
            )
        )

    def eval_call(
        self, node: ast.Call, args: List[Optional[Taint]]
    ) -> Optional[Taint]:
        self._check_call_sinks(node, args)
        return super().eval_call(node, args)

    def _check_call_sinks(
        self, node: ast.Call, args: List[Optional[Taint]]
    ) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            return
        if name == "hash":
            for arg_node, taint in zip(node.args, args):
                if taint:
                    self._report(arg_node, taint, "a hash()-based key")
            return
        if name == "quantize_key" or "cache_key" in name:
            for arg_node, taint in zip(node.args, args):
                if taint:
                    self._report(arg_node, taint, "cache-key construction")
            for keyword in node.keywords:
                taint = self.eval(keyword.value)
                if taint:
                    self._report(
                        keyword.value, taint, "cache-key construction"
                    )
            return
        if name in _STATE_CONSTRUCTORS:
            for arg_node, taint in zip(node.args, args):
                if taint:
                    self._report(
                        arg_node, taint, f"checkpoint state ({name})"
                    )
            for keyword in node.keywords:
                taint = self.eval(keyword.value)
                if taint:
                    self._report(
                        keyword.value,
                        taint,
                        f"checkpoint state ({name}.{keyword.arg})",
                    )
            return
        if name == "emit_event":
            for arg_node in node.args:
                taint = self.eval(arg_node)
                if taint:
                    self._report(arg_node, taint, "a telemetry run event")
            for keyword in node.keywords:
                taint = self.eval(keyword.value)
                if taint:
                    self._report(
                        keyword.value, taint, "a telemetry run event"
                    )
            return
        if (
            isinstance(func, ast.Attribute)
            and name in _KEYED_METHODS
            and node.args
        ):
            container = _container_name(func.value)
            if container and _CACHE_NAME_RE.search(container):
                taint = args[0] if args else None
                if taint:
                    self._report(
                        node.args[0],
                        taint,
                        f"the key of cache {container!r}",
                    )

    def eval_subscript(
        self,
        node: ast.Subscript,
        value: Optional[Taint],
        key: Optional[Taint],
    ) -> Optional[Taint]:
        container = _container_name(node.value)
        if key and container and _CACHE_NAME_RE.search(container):
            self._report(node.slice, key, f"the key of cache {container!r}")
        return super().eval_subscript(node, value, key)

    def on_return(self, node: ast.Return, value: Optional[Taint]) -> None:
        if not value or self.function_name is None:
            return
        if not _SCORING_NAME_RE.search(self.function_name):
            return
        module = self.ctx.module
        in_scope = (
            module == "repro.optimize"
            or module.startswith("repro.optimize.")
            or "sa-scoring" in self.ctx.scopes
        )
        if in_scope:
            self._report(
                node,
                value,
                f"the return value of scoring function "
                f"{self.function_name!r} (SA scoring must be deterministic)",
            )


@register
class DeterminismRule(Rule):
    """R9: nondeterminism must not reach caches, checkpoints, or scoring."""

    id = "R9"
    name = "determinism-taint"
    description = (
        "wall-clock, id(), pids, unseeded RNGs, and set iteration order "
        "must not flow into cache keys, checkpoint state, telemetry events, "
        "or SA scoring"
    )

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        if is_boundary(ctx):
            return
        summaries = compute_summaries(project)
        symbols = project.modules[ctx.module]
        findings: List[Finding] = []
        flow = TaintCheck(self, ctx, symbols, project, summaries, findings)
        flow.walk(ctx.tree.body)
        yield from findings
