"""Finding baselines: ratchet new code clean while old debt burns down.

A baseline file records the currently-accepted findings as *fingerprints*
-- ``(rule, path, message)`` with a count -- deliberately ignoring line
numbers, so unrelated edits that shift a finding up or down the file do not
churn the baseline.  ``--baseline`` subtracts baselined findings from the
failure set (they are still reported, marked ``baselined``); anything *not*
in the baseline fails the build as usual, and entries no longer matched by
any finding are reported as stale so the file shrinks over time.

``--write-baseline`` snapshots the current unsuppressed findings.  The
committed ``lint-baseline.json`` at the repo root carries the known R8
coverage debt in ``repro.thermal``; shrinking it is the only accepted
direction of travel.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..checkpoint.atomic import atomic_write_json
from ..errors import LintError
from .core import Finding, LintReport

#: A baseline fingerprint: rule id, resolved path, message.
BaselineKey = Tuple[str, str, str]

_VERSION = 1


def _resolved(path: str) -> str:
    """One canonical spelling of a path, whatever the caller passed."""
    return Path(path).resolve().as_posix()


def finding_key(finding: Finding) -> BaselineKey:
    """The line-independent fingerprint of one finding."""
    return (finding.rule, _resolved(finding.path), finding.message)


def write_baseline(
    findings: List[Finding], path: Union[str, Path]
) -> None:
    """Snapshot ``findings`` as a baseline file (sorted, line-free).

    Paths are stored relative to the baseline file itself so the committed
    file is machine-independent; a finding outside that root keeps its
    absolute path.
    """
    root = Path(path).resolve().parent
    counts = Counter(finding_key(f) for f in findings)
    entries = []
    for (rule, fpath, message), count in sorted(counts.items()):
        try:
            stored = Path(fpath).relative_to(root).as_posix()
        except ValueError:
            stored = fpath
        entries.append(
            {"rule": rule, "path": stored, "message": message, "count": count}
        )
    atomic_write_json(path, {"version": _VERSION, "entries": entries})


def load_baseline(path: Union[str, Path]) -> Dict[BaselineKey, int]:
    """Parse a baseline file into fingerprint counts."""
    path = Path(path)
    if not path.exists():
        raise LintError(f"baseline file not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise LintError(f"{path}: invalid baseline JSON: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("version") != _VERSION
        or not isinstance(payload.get("entries"), list)
    ):
        raise LintError(
            f"{path}: not a version-{_VERSION} lint baseline file"
        )
    root = path.resolve().parent
    counts: Dict[BaselineKey, int] = {}
    for entry in payload["entries"]:
        try:
            stored = Path(str(entry["path"]))
            if not stored.is_absolute():
                stored = root / stored
            key = (
                str(entry["rule"]),
                stored.resolve().as_posix(),
                str(entry["message"]),
            )
            count = int(entry.get("count", 1))
        except (TypeError, KeyError) as exc:
            raise LintError(f"{path}: malformed baseline entry") from exc
        counts[key] = counts.get(key, 0) + max(count, 1)
    return counts


def apply_baseline(
    report: LintReport, baseline: Dict[BaselineKey, int]
) -> None:
    """Move baselined findings out of the failure set, in place.

    Findings matching a fingerprint with remaining count move to
    ``report.baselined``; extra occurrences beyond the recorded count stay
    failing (a *grown* debt is new debt).  Fingerprints never matched are
    recorded in ``report.stale_baseline``.
    """
    remaining = dict(baseline)
    still_failing: List[Finding] = []
    for finding in report.findings:
        key = finding_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            report.baselined.append(finding)
        else:
            still_failing.append(finding)
    report.findings = still_failing
    report.stale_baseline = sorted(
        key for key, count in remaining.items()
        if count == baseline[key]  # never matched at all
    )
