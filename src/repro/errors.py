"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GeometryError(ReproError):
    """Invalid stack or grid geometry (bad dimensions, overlapping layers...)."""


class DesignRuleError(ReproError):
    """A cooling network violates one of the design rules of Section 3."""

    def __init__(self, message: str, violations: list | None = None):
        super().__init__(message)
        #: Individual violation descriptions, one string each.
        self.violations: list = list(violations) if violations else []


class FlowError(ReproError):
    """The flow network is ill-posed (no inlet, no outlet, disconnected...)."""


class ThermalError(ReproError):
    """The thermal system cannot be assembled or solved."""


class SearchError(ReproError):
    """A pressure search or optimization loop failed to make progress."""


class InfeasibleError(ReproError):
    """No feasible operating point exists for the given constraints."""

    def __init__(self, message: str, best_value: float | None = None):
        super().__init__(message)
        #: Best (infeasible) value encountered, useful for diagnostics.
        self.best_value = best_value


class BenchmarkError(ReproError):
    """A benchmark case definition or file is invalid."""
