"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still letting
programming errors (``TypeError`` etc.) propagate.

This module is also the one sanctioned *crash-translation boundary*
(``repro-lint-scope: error-boundary``): :func:`crash_boundary` is the only
place allowed to catch ``Exception``, converting anything that is not a
:class:`ReproError` into a :class:`CandidateCrashError` so batch evaluators
can tell "this candidate is infeasible" apart from "this code is broken"
without ever swallowing a genuine bug.  Everywhere else, the R4 lint rule
forbids broad excepts and builtin raises.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GeometryError(ReproError):
    """Invalid stack or grid geometry (bad dimensions, overlapping layers...)."""


class DesignRuleError(ReproError):
    """A cooling network violates one of the design rules of Section 3."""

    def __init__(self, message: str, violations: list | None = None):
        super().__init__(message)
        #: Individual violation descriptions, one string each.
        self.violations: list = list(violations) if violations else []


class FlowError(ReproError):
    """The flow network is ill-posed (no inlet, no outlet, disconnected...)."""


class ThermalError(ReproError):
    """The thermal system cannot be assembled or solved."""


class LinalgError(ReproError):
    """Raised by :mod:`repro.linalg`: a singular or failed factorization, an
    unknown/unavailable solver backend, or a low-rank update that left the
    system numerically unsolvable.  Callers translate it into their own
    domain error (:class:`FlowError` / :class:`ThermalError`)."""


class SearchError(ReproError):
    """A pressure search or optimization loop failed to make progress."""


class InfeasibleError(ReproError):
    """No feasible operating point exists for the given constraints."""

    def __init__(self, message: str, best_value: float | None = None):
        super().__init__(message)
        #: Best (infeasible) value encountered, useful for diagnostics.
        self.best_value = best_value


class BenchmarkError(ReproError):
    """A benchmark case definition or file is invalid."""


class LintError(ReproError):
    """The static-analysis pass was misconfigured or hit unparsable input."""


class PoolError(ReproError):
    """A parallel evaluation pool failed as a whole (not one candidate)."""


class WorkerTimeoutError(PoolError):
    """A worker batch made no progress within the configured timeout."""


class WorkerLostError(PoolError):
    """A worker process died (crash, kill, OOM) mid-batch."""


class CheckpointError(ReproError):
    """A checkpoint file cannot be trusted for resume.

    Raised by :mod:`repro.checkpoint` whenever a file is not a checkpoint at
    all, was written by a different schema version, carries a payload whose
    CRC does not match (truncated/corrupted write), or fingerprints a
    different run setup (other case, stage list, seed...).  The contract is
    strict: a resume either restores the exact recorded state or fails with
    this error -- never a silent wrong-state resume.
    """


class RunInterrupted(ReproError):
    """A supervised run stopped on request after flushing a checkpoint.

    Raised from inside the staged flow when the run supervisor (SIGINT /
    SIGTERM handler in :mod:`repro.cli`, or any ``interrupt_check``
    callback) asked the run to stop; the final checkpoint has already been
    written when this propagates, so the run can be resumed later.

    Attributes:
        checkpoint_path: Where the final checkpoint was flushed.
    """

    def __init__(self, message: str, checkpoint_path: "str | None" = None):
        super().__init__(message)
        self.checkpoint_path = checkpoint_path


class FaultConfigError(ReproError):
    """A fault-injection plan references an unknown site/kind or bad knobs."""


class TelemetryError(ReproError):
    """A telemetry artifact or configuration cannot be trusted.

    Raised by :mod:`repro.profiling` / :mod:`repro.telemetry` on histogram
    bucket-bound mismatches, malformed run-log files (corruption anywhere
    other than a torn final line), or invalid report/export requests.
    """


class JobError(ReproError):
    """Base class for the design-as-a-service job layer (:mod:`repro.server`).

    Every rejection path in the job store, lease manager, scheduler, and
    HTTP API raises a :class:`JobError` subclass, so the API layer can map
    library failures onto typed HTTP responses (and so no queue-layer
    failure is ever a bare builtin exception).
    """


class JobValidationError(JobError):
    """A job submission payload is invalid (HTTP 400).

    Attributes:
        field: The offending payload field, when one can be named.
    """

    def __init__(self, message: str, field: "str | None" = None):
        super().__init__(message)
        self.field = field


class JobNotFoundError(JobError):
    """No job with the requested id exists in the store (HTTP 404)."""


class JobStateError(JobError):
    """The job exists but is in the wrong state for the request (HTTP 409),
    e.g. fetching the result of a job that has not completed."""


class JobRecordError(JobError):
    """A persisted job record cannot be trusted (bad magic, schema version
    skew, CRC mismatch, truncated write).  The store treats such records
    like checkpoints: reject loudly, never half-parse."""


class JobQueueFullError(JobError):
    """A tenant's active-job cap is exhausted (HTTP 429).

    Attributes:
        retry_after: Suggested client backoff in seconds.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class LeaseError(JobError):
    """A job lease cannot be acquired, renewed, or released."""


class LeaseLostError(LeaseError):
    """The worker's lease expired or was reclaimed while it held the job.

    The holder must stop mutating the job immediately: another worker may
    already own it.  Raised by lease renewal and by the completion path's
    ownership re-check.
    """


class InjectedFaultError(ReproError):
    """A deliberate fault raised by :mod:`repro.faults` as a *library* error.

    Being a :class:`ReproError`, evaluation loops treat it exactly like a
    genuinely infeasible candidate -- which is the point: chaos tests use it
    to prove the infeasible path, not the crash path.
    """


class CandidateCrashError(RuntimeError):
    """An unexpected (non-:class:`ReproError`) exception while scoring a
    candidate.  Deliberately *not* a ``ReproError``: optimization loops must
    not swallow it as just another infeasible network."""


@contextmanager
def crash_boundary(context: str) -> Iterator[None]:
    """The sanctioned translation boundary around untrusted evaluation.

    Lets :class:`ReproError` (infeasible/illegal inputs) and
    :class:`CandidateCrashError` (already translated) propagate untouched;
    any other exception is a programming error and is re-raised as
    :class:`CandidateCrashError` with ``context`` in the message so the
    crashing point stays reproducible across process boundaries.
    """
    try:
        yield
    except (ReproError, CandidateCrashError):
        raise
    except Exception as exc:
        raise CandidateCrashError(
            f"{context} crashed: {type(exc).__name__}: {exc}"
        ) from exc
