"""Material property library.

Two small frozen dataclasses describe everything the thermal and flow models
need: :class:`Solid` (thermal conductivity, volumetric heat capacity) and
:class:`Coolant` (adds dynamic viscosity for the Hagen-Poiseuille flow model).

The module ships the materials the paper's benchmarks use -- silicon dies,
SiO2 / BEOL interconnect stacks, copper TSVs, and water coolant -- with
property values matching 3D-ICE and standard heat-transfer references
(Bergman et al., "Fundamentals of Heat and Mass Transfer").
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from .errors import GeometryError


@dataclass(frozen=True)
class Solid:
    """A solid material in the thermal stack.

    Attributes:
        name: Human readable identifier.
        thermal_conductivity: ``k``.  [unit: W/(m K)]
        volumetric_heat_capacity: ``rho * c_p`` (transient only).  [unit: J/(m^3 K)]
    """

    name: str
    thermal_conductivity: float
    volumetric_heat_capacity: float

    def __post_init__(self) -> None:
        if self.thermal_conductivity <= 0:
            raise GeometryError(
                f"material {self.name!r}: thermal conductivity must be "
                f"positive, got {self.thermal_conductivity}"
            )
        if self.volumetric_heat_capacity <= 0:
            raise GeometryError(
                f"material {self.name!r}: volumetric heat capacity must be "
                f"positive, got {self.volumetric_heat_capacity}"
            )


@dataclass(frozen=True)
class Coolant:
    """A single-phase liquid coolant.

    Attributes:
        name: Human readable identifier.
        thermal_conductivity: ``k_liquid`` (Eq. 5).  [unit: W/(m K)]
        volumetric_heat_capacity: ``C_v = rho * c_p`` (Eq. 6).  [unit: J/(m^3 K)]
        dynamic_viscosity: ``mu`` (Eq. 1).  [unit: Pa s]
    """

    name: str
    thermal_conductivity: float
    volumetric_heat_capacity: float
    dynamic_viscosity: float

    def __post_init__(self) -> None:
        for field in (
            "thermal_conductivity",
            "volumetric_heat_capacity",
            "dynamic_viscosity",
        ):
            value = getattr(self, field)
            if value <= 0:
                raise GeometryError(
                    f"coolant {self.name!r}: {field} must be positive, "
                    f"got {value}"
                )


# ---------------------------------------------------------------------------
# Stock materials
# ---------------------------------------------------------------------------

#: Bulk silicon at ~330 K.
SILICON = Solid(
    name="silicon",
    thermal_conductivity=130.0,
    volumetric_heat_capacity=1.628e6,
)

#: Back-end-of-line stack (SiO2 dielectric dominated), used for source layers.
BEOL = Solid(
    name="beol",
    thermal_conductivity=2.25,
    volumetric_heat_capacity=2.175e6,
)

#: Copper, for TSV-aware variants.
COPPER = Solid(
    name="copper",
    thermal_conductivity=400.0,
    volumetric_heat_capacity=3.42e6,
)

#: Silicon dioxide (channel walls / passivation).
SILICON_DIOXIDE = Solid(
    name="sio2",
    thermal_conductivity=1.4,
    volumetric_heat_capacity=1.65e6,
)

#: Thermal interface material.
TIM = Solid(
    name="tim",
    thermal_conductivity=4.0,
    volumetric_heat_capacity=2.0e6,
)

#: Liquid water at ~310 K, the contest coolant.
WATER = Coolant(
    name="water",
    thermal_conductivity=0.6,
    volumetric_heat_capacity=4.172e6,
    dynamic_viscosity=6.53e-4,
)

#: All stock solids by name, for file I/O round trips.  Read-only so worker
#: processes can never diverge from the parent's material library.
SOLIDS: Mapping[str, Solid] = MappingProxyType(
    {m.name: m for m in (SILICON, BEOL, COPPER, SILICON_DIOXIDE, TIM)}
)

#: All stock coolants by name (read-only, see :data:`SOLIDS`).
COOLANTS: Mapping[str, Coolant] = MappingProxyType({WATER.name: WATER})


def solid_by_name(name: str) -> Solid:
    """Look up a stock solid material, raising ``GeometryError`` if unknown."""
    try:
        return SOLIDS[name]
    except KeyError:
        raise GeometryError(
            f"unknown solid material {name!r}; known: {sorted(SOLIDS)}"
        ) from None


def coolant_by_name(name: str) -> Coolant:
    """Look up a stock coolant, raising ``GeometryError`` if unknown."""
    try:
        return COOLANTS[name]
    except KeyError:
        raise GeometryError(
            f"unknown coolant {name!r}; known: {sorted(COOLANTS)}"
        ) from None
