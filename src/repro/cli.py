"""Command-line interface for the liquid-cooling design flows.

Subcommands mirror the library's main entry points::

    repro simulate  --case 1 --grid 51 --network tree --pressure 15e3
    repro optimize  --case 1 --problem 1 --quick --out design.txt
    repro portfolio --case-seed 7 --optimizers multi_fidelity tempering
    repro evaluate  --case 1 --network-file design.txt --problem 1
    repro compare   --case 1 --grid 41 --tiles 2 4 8
    repro render    --network-file design.txt

(also available as ``python -m repro ...``).

Long ``optimize`` runs are supervised when ``--checkpoint-dir`` is given:
SIGINT/SIGTERM flush a final checkpoint before the process exits with
:data:`EXIT_INTERRUPTED` (75), and ``--resume`` picks the run back up --
bitwise -- from whatever the checkpoint captured (see
:mod:`repro.checkpoint`).
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from . import telemetry
from .analysis import (
    compare_models,
    format_table,
    render_field,
    render_network,
    source_layer_map,
)
from .telemetry import runlog
from .telemetry.export import write_chrome_trace
from .analysis.model_compare import aggregate_by
from .cooling import CoolingSystem, evaluate_problem1, evaluate_problem2
from .errors import ReproError, RunInterrupted
from .iccad2015 import load_case, read_network, write_network
from .networks import serpentine_network
from .optimize import optimize_problem1, optimize_problem2
from .optimize.portfolio import (
    DEFAULT_PORTFOLIO,
    PROBLEM_PUMPING_POWER,
    PROBLEM_THERMAL_GRADIENT,
    PortfolioConfig,
    run_portfolio,
)
from .thermal import RC2Simulator, RC4Simulator

#: Exit code of a supervised run stopped by SIGINT/SIGTERM after flushing
#: its checkpoint (EX_TEMPFAIL: rerun with ``--resume`` to continue).
EXIT_INTERRUPTED = 75


class RunSupervisor:
    """Translates SIGINT/SIGTERM into a cooperative stop flag.

    Used as a context manager around a checkpointed run: while active, the
    first SIGINT/SIGTERM sets :meth:`stop_requested` instead of killing the
    process, the checkpoint layer polls the flag after every write and
    raises :class:`~repro.errors.RunInterrupted` once it is set -- so the
    process always exits *after* its latest state reached disk.  A second
    SIGINT (e.g. an impatient Ctrl-C) falls through to Python's default
    ``KeyboardInterrupt`` behavior.  Previous handlers are restored on exit.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self._stop = False
        self._previous: dict = {}

    def stop_requested(self) -> bool:
        """True once a stop signal arrived (the ``interrupt_check`` hook)."""
        return self._stop

    def _handle(self, signum, frame) -> None:
        if self._stop and signum == signal.SIGINT:
            raise KeyboardInterrupt
        self._stop = True
        print(
            "stop requested; flushing checkpoint at the next safe point "
            "(interrupt again to abort hard)",
            file=sys.stderr,
        )

    def __enter__(self) -> "RunSupervisor":
        for signum in self.SIGNALS:
            self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        args.handler(args)
    except RunInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Liquid cooling network design for 3D ICs (DAC 2017 "
        "reproduction)",
    )
    parser.set_defaults(command=None)
    sub = parser.add_subparsers(dest="command")

    def add_case_args(p):
        p.add_argument("--case", type=int, default=1, help="benchmark case 1-5")
        p.add_argument(
            "--grid", type=int, default=51, help="grid size in basic cells"
        )

    p = sub.add_parser("simulate", help="steady thermal simulation")
    add_case_args(p)
    p.add_argument(
        "--network",
        choices=("straight", "tree", "serpentine"),
        default="straight",
    )
    p.add_argument("--network-file", help="load the network from a file instead")
    p.add_argument("--pressure", type=float, default=15e3, help="P_sys in Pa")
    p.add_argument("--model", choices=("2rm", "4rm"), default="2rm")
    p.add_argument("--tile-size", type=int, default=4)
    p.add_argument("--map", action="store_true", help="print the source map")
    p.set_defaults(handler=_cmd_simulate)

    p = sub.add_parser("optimize", help="run a design flow (Problem 1 or 2)")
    add_case_args(p)
    p.add_argument("--problem", type=int, choices=(1, 2), default=1)
    p.add_argument("--quick", action="store_true", help="reduced SA schedule")
    p.add_argument(
        "--directions", type=int, nargs="+", default=[0, 1],
        help="global flow directions to try (0-7)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--init",
        choices=("uniform", "power_aware"),
        default="uniform",
        help="tree-parameter initialization",
    )
    p.add_argument("--out", help="write the winning network to this file")
    p.add_argument(
        "--checkpoint-dir",
        help="write crash-safe checkpoints here; SIGINT/SIGTERM flush a "
        f"final one and exit with code {EXIT_INTERRUPTED}",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoint in --checkpoint-dir (bitwise; "
        "a missing checkpoint just starts fresh)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="also checkpoint every N SA iterations (default: "
        "repro.constants.CHECKPOINT_EVERY_ITERATIONS)",
    )
    p.add_argument(
        "--trace-out",
        metavar="TRACE.json",
        help="record spans (parent + workers) and export a Chrome "
        "trace-event JSON here; open it in Perfetto or chrome://tracing",
    )
    p.add_argument(
        "--run-log",
        metavar="RUN.jsonl",
        help="append typed run events (per SA iteration/round/stage) to "
        "this JSONL file; analyze with `python -m repro.telemetry report`",
    )
    p.add_argument(
        "--metrics-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --run-log: also sample the profiling counters into "
        "run.metrics records at most every SECONDS seconds",
    )
    p.set_defaults(handler=_cmd_optimize)

    p = sub.add_parser(
        "portfolio",
        help="race registered optimizers (2RM surrogate + 4RM promotion)",
    )
    p.add_argument("--case", type=int, default=1, help="benchmark case 1-5")
    p.add_argument(
        "--case-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="run on procedurally generated case SEED (repro.cases) "
        "instead of a contest case",
    )
    p.add_argument(
        "--grid", type=int, default=None, help="grid size override"
    )
    p.add_argument("--problem", type=int, choices=(1, 2), default=1)
    p.add_argument(
        "--optimizers",
        nargs="+",
        default=list(DEFAULT_PORTFOLIO),
        metavar="NAME",
        help="registry names to race (see --list)",
    )
    p.add_argument(
        "--list", action="store_true", help="list registered optimizers"
    )
    p.add_argument("--rounds", type=int, default=3)
    p.add_argument("--iterations", type=int, default=8,
                   help="SA iterations per round")
    p.add_argument("--batch-size", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--checkpoint-dir",
        help="checkpoint at every optimizer round boundary; SIGINT/SIGTERM "
        f"still flush state before exit code {EXIT_INTERRUPTED}",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoint in --checkpoint-dir (bitwise; "
        "a missing checkpoint just starts fresh)",
    )
    p.add_argument(
        "--run-log-dir",
        metavar="DIR",
        help="write one JSONL run log per optimizer into DIR; compare "
        "strategies with `python -m repro.telemetry report A.jsonl "
        "--compare B.jsonl`",
    )
    p.set_defaults(handler=_cmd_portfolio)

    p = sub.add_parser(
        "serve",
        help="run the design service (durable job queue + HTTP API)",
    )
    p.add_argument(
        "--root", required=True, help="job-store root directory (durable)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8752, help="0 picks a free port"
    )
    p.add_argument("--workers", type=int, default=1,
                   help="job-executing worker threads")
    p.add_argument(
        "--tenant-cap", type=int, default=8,
        help="max active jobs per tenant (429 past it)",
    )
    p.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="worker lease TTL; crash recovery latency is about one TTL",
    )
    p.add_argument(
        "--run-log", metavar="RUN.jsonl",
        help="append service lifecycle events to this JSONL file",
    )
    p.add_argument(
        "--trace-jobs", action="store_true",
        help="export a stitched Chrome/Perfetto trace per job "
        "(GET /v1/jobs/<id>/trace)",
    )
    p.set_defaults(handler=_cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a job to a running design service"
    )
    p.add_argument("--url", default="http://127.0.0.1:8752")
    p.add_argument("--case", type=int, help="contest case 1-5")
    p.add_argument(
        "--case-seed", type=int, metavar="SEED",
        help="procedurally generated case instead of a contest case",
    )
    p.add_argument("--grid", type=int, help="grid size override")
    p.add_argument("--problem", type=int, choices=(1, 2), default=1)
    p.add_argument("--optimizers", nargs="+", metavar="NAME")
    p.add_argument("--rounds", type=int, default=2)
    p.add_argument("--iterations", type=int, default=4)
    p.add_argument("--batch-size", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tenant", default="default")
    p.add_argument(
        "--wait", action="store_true",
        help="stream the job's events live until it completes and print "
        "the result (falls back to polling if the stream breaks)",
    )
    p.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="with --wait: give up after this long",
    )
    p.set_defaults(handler=_cmd_submit)

    p = sub.add_parser(
        "top", help="live terminal dashboard for a running design service"
    )
    p.add_argument("--url", default="http://127.0.0.1:8752")
    p.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh interval",
    )
    p.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N refreshes (0 = until Ctrl-C)",
    )
    p.set_defaults(handler=_cmd_top)

    p = sub.add_parser("evaluate", help="evaluate a network file")
    add_case_args(p)
    p.add_argument("--network-file", required=True)
    p.add_argument("--problem", type=int, choices=(1, 2), default=1)
    p.add_argument("--model", choices=("2rm", "4rm"), default="4rm")
    p.set_defaults(handler=_cmd_evaluate)

    p = sub.add_parser("compare", help="2RM vs 4RM accuracy/speed sweep")
    add_case_args(p)
    p.add_argument("--tiles", type=int, nargs="+", default=[2, 4, 8])
    p.add_argument(
        "--pressures", type=float, nargs="+", default=[5e3, 2e4]
    )
    p.set_defaults(handler=_cmd_compare)

    p = sub.add_parser("render", help="ASCII-render a network file")
    p.add_argument("--network-file", required=True)
    p.add_argument("--max-width", type=int, default=150)
    p.set_defaults(handler=_cmd_render)
    return parser


# ---------------------------------------------------------------------------
# Handlers
# ---------------------------------------------------------------------------


def _load_network(args, case):
    if getattr(args, "network_file", None):
        return read_network(args.network_file)
    kind = getattr(args, "network", "straight")
    if kind == "straight":
        return case.baseline_network()
    if kind == "tree":
        return case.tree_plan().build()
    return serpentine_network(case.nrows, case.ncols, 0, 4, case.cell_width)


def _cmd_simulate(args) -> None:
    case = load_case(args.case, grid_size=args.grid)
    stack = case.stack_with_network(_load_network(args, case))
    if args.model == "2rm":
        simulator = RC2Simulator(stack, case.coolant, tile_size=args.tile_size)
    else:
        simulator = RC4Simulator(stack, case.coolant)
    result = simulator.solve(args.pressure)
    print(f"{case}")
    print(f"{simulator.model_name} ({simulator.n_nodes} nodes): "
          f"{result.summary()}")
    print(f"energy balance error: {result.energy_balance_error():.2e}")
    if args.map:
        print(render_field(source_layer_map(result), max_width=80))


def _cmd_optimize(args) -> None:
    if args.resume and not args.checkpoint_dir:
        raise ReproError("--resume needs --checkpoint-dir")
    if args.metrics_interval is not None and not args.run_log:
        raise ReproError("--metrics-interval needs --run-log")
    case = load_case(args.case, grid_size=args.grid)
    optimizer = optimize_problem1 if args.problem == 1 else optimize_problem2
    prev_tracing = (
        telemetry.set_tracing(True) if args.trace_out else None
    )
    prev_log = (
        runlog.set_run_log(
            runlog.RunLog(args.run_log, metrics_interval=args.metrics_interval)
        )
        if args.run_log
        else None
    )
    try:
        if args.checkpoint_dir:
            with RunSupervisor() as supervisor:
                result = optimizer(
                    case,
                    quick=args.quick,
                    directions=tuple(args.directions),
                    seed=args.seed,
                    n_workers=args.workers,
                    initialization=args.init,
                    checkpoint_dir=args.checkpoint_dir,
                    resume=args.resume,
                    checkpoint_every=args.checkpoint_every,
                    interrupt_check=supervisor.stop_requested,
                )
        else:
            result = optimizer(
                case,
                quick=args.quick,
                directions=tuple(args.directions),
                seed=args.seed,
                n_workers=args.workers,
                initialization=args.init,
            )
    finally:
        # Restore the globals and flush artifacts even when the run was
        # interrupted or failed -- a partial trace of a crashed run is
        # exactly what you want to look at.
        if args.run_log:
            runlog.set_run_log(prev_log)
        if args.trace_out:
            write_chrome_trace(args.trace_out)
            telemetry.set_tracing(prev_tracing)
            telemetry.clear_spans()
            print(f"[trace: {args.trace_out}]", file=sys.stderr)
    ev = result.evaluation
    status = "feasible" if ev.feasible else "INFEASIBLE"
    print(f"{case}  problem {args.problem}  [{status}]")
    print(
        f"P_sys={ev.p_sys / 1e3:.2f} kPa  W_pump={ev.w_pump * 1e3:.3f} mW  "
        f"T_max={ev.t_max:.2f} K  DeltaT={ev.delta_t:.2f} K  "
        f"({result.total_simulations} simulations, direction "
        f"{result.direction})"
    )
    if args.out:
        write_network(result.network, args.out)
        print(f"network written to {args.out}")


def _cmd_portfolio(args) -> None:
    from .optimize.registry import get_optimizer, optimizer_names

    if args.list:
        for name in optimizer_names():
            print(f"{name:16s} {get_optimizer(name).description}")
        return
    if args.resume and not args.checkpoint_dir:
        raise ReproError("--resume needs --checkpoint-dir")
    if args.case_seed is not None:
        from .cases import generate_case

        case = generate_case(args.case_seed, grid_size=args.grid)
    else:
        case = load_case(args.case, grid_size=args.grid or 51)
    problem = (
        PROBLEM_PUMPING_POWER if args.problem == 1 else PROBLEM_THERMAL_GRADIENT
    )
    config = PortfolioConfig(
        problem=problem,
        rounds=args.rounds,
        iterations=args.iterations,
        batch_size=args.batch_size,
        seed=args.seed,
        n_workers=args.workers,
    )
    if args.checkpoint_dir:
        with RunSupervisor() as supervisor:
            result = run_portfolio(
                case,
                tuple(args.optimizers),
                config,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                run_log_dir=args.run_log_dir,
                interrupt_check=supervisor.stop_requested,
            )
    else:
        result = run_portfolio(
            case,
            tuple(args.optimizers),
            config,
            run_log_dir=args.run_log_dir,
        )
    print(f"{case}  problem {args.problem}")
    rows = []
    for outcome in result.outcomes.values():
        ev = outcome.evaluation
        rows.append(
            [
                outcome.name,
                f"{outcome.score:.6g}",
                "yes" if ev.feasible else "NO",
                outcome.low_evals,
                outcome.high_evals,
                "-" if outcome.envelope is None else f"{outcome.envelope:.3f}",
            ]
        )
    print(
        format_table(
            ["optimizer", "score", "feasible", "2rm evals", "4rm evals",
             "envelope"],
            rows,
        )
    )
    print(f"winner: {result.best.name} (score {result.best.score:.6g})")
    if args.run_log_dir:
        print(f"[run logs: {args.run_log_dir}/<optimizer>.jsonl]",
              file=sys.stderr)


def _cmd_serve(args) -> None:
    from .server import DesignService

    service = DesignService(
        args.root,
        host=args.host,
        port=args.port,
        n_workers=args.workers,
        tenant_cap=args.tenant_cap,
        lease_ttl=args.lease_ttl,
        run_log=args.run_log,
        trace_jobs=args.trace_jobs,
    )
    with RunSupervisor() as supervisor:
        service.start()
        print(
            f"design service on http://{args.host}:{service.port} "
            f"(root {args.root}, {args.workers} workers, lease TTL "
            f"{args.lease_ttl:g}s); SIGTERM drains gracefully",
            flush=True,
        )
        try:
            import time as _time

            while not supervisor.stop_requested():
                _time.sleep(0.2)
        finally:
            service.stop()
            print("drained; job queue state is durable", file=sys.stderr)


def _cmd_submit(args) -> None:
    from .server import ServiceClient

    payload = {
        "problem": args.problem,
        "rounds": args.rounds,
        "iterations": args.iterations,
        "batch_size": args.batch_size,
        "seed": args.seed,
    }
    if args.case_seed is not None:
        payload["case_seed"] = args.case_seed
    elif args.case is not None:
        payload["case"] = args.case
    if args.grid is not None:
        payload["grid"] = args.grid
    if args.optimizers:
        payload["optimizers"] = list(args.optimizers)
    client = ServiceClient(args.url, tenant=args.tenant)
    record = client.submit(payload)
    job_id = record["job_id"]
    print(f"job {job_id} {record['state']}", flush=True)
    if not args.wait:
        return
    from .errors import JobError

    try:
        for event in client.follow_events(job_id):
            line = _format_job_event(event)
            if line:
                print(line, flush=True)
    except JobError as exc:
        print(
            f"[event stream broke ({exc}); falling back to polling]",
            file=sys.stderr,
        )
    final = client.wait(job_id, timeout=args.timeout)
    result = client.result(job_id)
    print(
        f"job {job_id} completed after {final['attempts']} retries: "
        f"winner {result['winner']} score {result['score']:.6g} "
        f"({'feasible' if result['feasible'] else 'INFEASIBLE'})"
    )


def _format_job_event(event: dict) -> str:
    """One human line per streamed job event ('' hides the event)."""
    etype = event.get("type", "?")
    if etype == "portfolio.round":
        score = event.get("verified")
        tail = (
            f" score {score:.6g}"
            if isinstance(score, (int, float))
            else ""
        )
        return f"  {event.get('optimizer', '?')} round{tail}"
    if etype == "portfolio.optimizer.start":
        return (
            f"  {event.get('optimizer', '?')} starting "
            f"({event.get('rounds', '?')} rounds)"
        )
    if etype == "portfolio.optimizer.end":
        score = event.get("score")
        tail = (
            f" score {score:.6g}"
            if isinstance(score, (int, float))
            else ""
        )
        return f"  {event.get('optimizer', '?')} finished{tail}"
    if etype == "stream.end":
        return f"  [stream closed: {event.get('reason')}]"
    if etype.startswith("job."):
        who = event.get("worker") or event.get("reaper") or ""
        return f"  {etype}" + (f" ({who})" if who else "")
    return ""


def _cmd_top(args) -> None:
    from .server import run_top

    run_top(args.url, interval=args.interval, iterations=args.iterations)


def _cmd_evaluate(args) -> None:
    case = load_case(args.case, grid_size=args.grid)
    network = read_network(args.network_file)
    system = CoolingSystem.for_network(
        case.base_stack(), network, case.coolant, model=args.model
    )
    if args.problem == 1:
        ev = evaluate_problem1(system, case.delta_t_star, case.t_max_star)
    else:
        ev = evaluate_problem2(system, case.t_max_star, case.w_pump_star())
    status = "feasible" if ev.feasible else "INFEASIBLE"
    print(
        f"[{status}] P_sys={ev.p_sys / 1e3:.2f} kPa  "
        f"W_pump={ev.w_pump * 1e3:.3f} mW  T_max={ev.t_max:.2f} K  "
        f"DeltaT={ev.delta_t:.2f} K  ({ev.simulations} simulations)"
    )


def _cmd_compare(args) -> None:
    case = load_case(args.case, grid_size=args.grid)
    stack = case.base_stack()
    records = compare_models(
        stack, case.coolant, args.tiles, args.pressures, style="straight"
    )
    by_tile = aggregate_by(records, "tile_size")
    cell_um = case.cell_width * 1e6
    rows = [
        [
            f"{tile * cell_um:.0f} um",
            f"{stats['error_abs']:.3%}",
            f"{stats['error_rise']:.2%}",
            f"{stats['speedup']:.1f}x",
        ]
        for tile, stats in by_tile.items()
    ]
    print(
        format_table(
            ["thermal cell", "error (vs T)", "error (vs rise)", "speed-up"],
            rows,
            title=f"2RM vs 4RM on case {case.number} ({case.nrows}x"
            f"{case.ncols})",
        )
    )


def _cmd_render(args) -> None:
    network = read_network(args.network_file)
    print(render_network(network, max_width=args.max_width))


if __name__ == "__main__":
    sys.exit(main())
