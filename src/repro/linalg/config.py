"""Process-wide solver configuration, shippable to pool workers.

:class:`LinalgConfig` mirrors the :class:`~repro.telemetry.TelemetryConfig`
pattern: a small frozen (hashable, picklable) dataclass captured with
:meth:`LinalgConfig.current` in the parent, shipped through the evaluation
pool's initializer arguments, re-armed worker-side with
:meth:`LinalgConfig.apply`, and folded into the pool cache key so flipping
any knob never reuses workers armed with a stale setup.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from ..errors import LinalgError

#: Default Woodbury rank before the incremental paths refactorize exactly.
DEFAULT_RANK_THRESHOLD = 96  #: [unit: 1]
#: Default cap on accumulated low-rank update batches between rebuilds.
DEFAULT_UPDATE_BUDGET = 64  #: [unit: 1]
#: Default relative residual above which an incremental solve falls back to
#: an exact factorization.
DEFAULT_RESIDUAL_RTOL = 1e-8  #: [unit: 1]


@dataclass(frozen=True)
class LinalgConfig:
    """The sparse-solver knobs one process runs with.

    Attributes:
        backend: Force a registry backend by name; ``None`` auto-selects by
            problem size and availability (see ``docs/SOLVER_CACHES.md``).
        incremental: Whether the Woodbury incremental-update paths are used
            for search probes; exact solves are unaffected.
        rank_threshold: Largest accumulated low-rank correction before an
            incremental factorization rebuilds exactly.
        update_budget: Largest number of update *batches* folded into one
            base factorization before a rebuild.
        residual_rtol: Relative residual bound an incremental solve must
            meet, else it is discarded in favor of an exact solve.
    """

    backend: Optional[str] = None
    incremental: bool = True
    rank_threshold: int = DEFAULT_RANK_THRESHOLD
    update_budget: int = DEFAULT_UPDATE_BUDGET
    residual_rtol: float = DEFAULT_RESIDUAL_RTOL

    def __post_init__(self) -> None:
        if self.rank_threshold < 1:
            raise LinalgError(
                f"rank_threshold must be >= 1, got {self.rank_threshold}"
            )
        if self.update_budget < 1:
            raise LinalgError(
                f"update_budget must be >= 1, got {self.update_budget}"
            )
        if not self.residual_rtol > 0:
            raise LinalgError(
                f"residual_rtol must be > 0, got {self.residual_rtol}"
            )

    @classmethod
    def current(cls) -> "LinalgConfig":
        """The live configuration of this process."""
        return _ACTIVE

    def apply(self) -> None:
        """Make this the live configuration (worker-side re-arm)."""
        set_config(self)


_ACTIVE = LinalgConfig()


def current_config() -> LinalgConfig:
    """The live :class:`LinalgConfig` of this process."""
    return _ACTIVE


def set_config(config: LinalgConfig) -> LinalgConfig:
    """Install ``config`` process-wide; returns the previous one."""
    global _ACTIVE
    if not isinstance(config, LinalgConfig):
        raise LinalgError(
            f"expected a LinalgConfig, got {type(config).__name__}"
        )
    previous = _ACTIVE
    _ACTIVE = config
    return previous


def reset_config() -> None:
    """Restore the default configuration (mainly for tests)."""
    set_config(LinalgConfig())


@contextmanager
def use_config(**overrides: object) -> Iterator[LinalgConfig]:
    """Temporarily override configuration fields::

        with use_config(incremental=False):
            ...  # every solve in the block refactorizes exactly
    """
    previous = _ACTIVE
    active = replace(previous, **overrides)  # type: ignore[arg-type]
    set_config(active)
    try:
        yield active
    finally:
        set_config(previous)
