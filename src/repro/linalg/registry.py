"""Backend selection and the one sanctioned factorization entry point.

:func:`factorize` is how the rest of the repo factorizes a sparse system
(lint rule R5 flags raw ``splu``/``factorized`` calls outside
``repro.linalg``).  Selection order:

1. An explicit backend -- ``LinalgConfig.backend`` or the
   ``REPRO_SOLVER_BACKEND`` environment variable -- wins; asking for an
   unknown or unavailable backend is a hard :class:`~repro.errors.
   LinalgError` (a forced backend silently falling back would invalidate
   benchmark comparisons).
2. Otherwise the registry auto-selects per problem shape: CHOLMOD for
   systems declared SPD, UMFPACK for large general systems (``n >=``
   :data:`UMFPACK_MIN_NODES`), scipy SuperLU for everything else.  Optional
   backends that are not importable are skipped gracefully -- on a
   scipy-only install every selection lands on ``scipy-splu``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import List, Optional

from scipy.sparse import csc_matrix

from .. import profiling, telemetry
from ..errors import LinalgError
from .backend import Factorization, SolverBackend
from .backends import CholmodBackend, ScipySuperLUBackend, UmfpackBackend
from .config import LinalgConfig, current_config

#: Environment override consulted when the config does not force a backend.
BACKEND_ENV_VAR = "REPRO_SOLVER_BACKEND"

#: Smallest system for which UMFPACK is auto-preferred over SuperLU: below
#: this, factorization is cheap enough that backend choice is noise.
UMFPACK_MIN_NODES = 2000  #: [unit: 1]

_REGISTRY: "OrderedDict[str, SolverBackend]" = OrderedDict()


def register_backend(backend: SolverBackend) -> None:
    """Add a backend to the registry (last registration of a name wins)."""
    if not backend.name or backend.name == "abstract":
        raise LinalgError("backend must define a concrete name")
    _REGISTRY[backend.name] = backend


def registered_backends() -> List[str]:
    """Names of every registered backend, available or not."""
    return list(_REGISTRY)


def available_backends() -> List[str]:
    """Names of the backends whose dependencies import in this process."""
    return [name for name, b in _REGISTRY.items() if b.available()]


def get_backend(name: str) -> SolverBackend:
    """Look up a backend by name; it must exist *and* be available."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise LinalgError(
            f"unknown solver backend {name!r}; registered: "
            f"{registered_backends()}"
        )
    if not backend.available():
        raise LinalgError(
            f"solver backend {name!r} is registered but its optional "
            f"dependency is not installed; available: {available_backends()}"
        )
    return backend


def select_backend(
    n: int,
    spd: bool = False,
    config: Optional[LinalgConfig] = None,
) -> SolverBackend:
    """The backend :func:`factorize` would use for an ``n x n`` system."""
    config = current_config() if config is None else config
    forced = config.backend or os.environ.get(BACKEND_ENV_VAR) or None
    if forced:
        backend = get_backend(forced)
        if backend.spd_only and not spd:
            raise LinalgError(
                f"backend {forced!r} only handles SPD systems; this system "
                f"was not declared SPD"
            )
        return backend
    if spd:
        cholmod = _REGISTRY.get("cholmod")
        if cholmod is not None and cholmod.available():
            return cholmod
    if n >= UMFPACK_MIN_NODES:
        umf = _REGISTRY.get("umfpack")
        if umf is not None and umf.available():
            return umf
    return _REGISTRY["scipy-splu"]


def factorize(
    matrix: csc_matrix,
    spd: bool = False,
    config: Optional[LinalgConfig] = None,
) -> Factorization:
    """Factorize ``matrix`` through the selected backend.

    Args:
        matrix: Square scipy sparse matrix (converted to CSC as needed).
        spd: Declare the system symmetric positive definite, unlocking
            Cholesky backends.
        config: Configuration override; defaults to the live process config.

    Raises:
        LinalgError: On singular/failed factorization or a forced backend
            that is unknown or unavailable.
    """
    backend = select_backend(matrix.shape[0], spd=spd, config=config)
    with telemetry.span(
        "linalg.factorize", nodes=matrix.shape[0], backend=backend.name
    ):
        with profiling.timer("linalg.factorize"):
            factorization = backend.factorize(matrix)
    profiling.increment("linalg.factorizations")
    profiling.increment(f"linalg.backend.{backend.name}")
    return factorization


register_backend(ScipySuperLUBackend())
register_backend(UmfpackBackend())
register_backend(CholmodBackend())
