"""Incremental factorization: low-rank Woodbury updates over a cached base.

An SA move perturbs only a handful of cell conductances, so the perturbed
operator is ``A = A0 + U C U^T`` with tiny rank: a conductance change
``delta_g`` between nodes ``i`` and ``j`` contributes the rank-1 symmetric
term ``delta_g (e_i - e_j)(e_i - e_j)^T``; a grounded (node-to-reservoir)
change contributes ``delta_g e_i e_i^T``.  Instead of refactorizing
(p50 ~3.2 ms on the bundled medium case), :class:`IncrementalFactorization`
keeps the base factorization and answers solves through the Woodbury
identity::

    (A0 + U C V^T)^{-1} b  =  y - W (C^{-1} + V^T W)^{-1} V^T y

with ``y = A0^{-1} b`` (one cheap triangular solve) and ``W = A0^{-1} U``
cached per update (one multi-RHS solve per batch).  Past a configurable
rank threshold -- or an accumulated-update budget -- the pending updates
are folded into the base matrix and refactorized exactly, so error cannot
accumulate without bound and the cost model stays flat.

Every incremental solve passes through the ``linalg.update`` fault site and
a finiteness check, so a corrupted correction surfaces as a typed
:class:`~repro.errors.LinalgError` instead of propagating NaNs.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np
from scipy.linalg import lu_factor, lu_solve
from scipy.sparse import coo_matrix, csc_matrix

from .. import profiling
from ..errors import LinalgError
from ..faults import SITE_LINALG_UPDATE, corrupt
from .config import LinalgConfig, current_config
from .registry import factorize


class IncrementalFactorization:
    """A factorization that absorbs small conductance edits cheaply.

    Args:
        matrix: The initial system matrix (any scipy sparse format).
        config: Solver configuration; defaults to the live process config
            (captured at construction -- later global flips do not retune a
            live instance).
        spd: Declare the system SPD (forwarded to backend selection).

    Use :meth:`update_pairs` / :meth:`update_diagonal` to apply conductance
    perturbations, then :meth:`solve` / :meth:`solve_many` as usual.  The
    instance tracks its own rebuild count in :attr:`n_rebuilds`.
    """

    def __init__(
        self,
        matrix: csc_matrix,
        config: Optional[LinalgConfig] = None,
        spd: bool = False,
    ) -> None:
        self._config = current_config() if config is None else config
        self._spd = spd
        base = matrix.tocsc()
        if base.shape[0] != base.shape[1]:
            raise LinalgError(f"system matrix must be square, got {base.shape}")
        self._base = base.copy()
        self._n = base.shape[0]
        self._factor = factorize(self._base, spd=spd, config=self._config)
        self.n_rebuilds = 0
        self._reset_updates()

    # -- state ----------------------------------------------------------

    def _reset_updates(self) -> None:
        self._u = np.zeros((self._n, 0))
        self._w = np.zeros((self._n, 0))
        self._c = np.zeros(0)
        self._cap_lu: Optional[Tuple[Any, Any]] = None
        self._pending_rows: List[np.ndarray] = []
        self._pending_cols: List[np.ndarray] = []
        self._pending_vals: List[np.ndarray] = []
        self._n_batches = 0

    @property
    def n(self) -> int:
        """System dimension."""
        return self._n

    @property
    def rank(self) -> int:
        """Rank of the currently pending Woodbury correction."""
        return int(self._u.shape[1])

    @property
    def backend(self) -> str:
        """Name of the backend holding the base factorization."""
        return self._factor.backend

    def matrix(self) -> csc_matrix:
        """The *current* operator (base plus every pending update)."""
        delta = self._pending_delta()
        if delta is None:
            return self._base.copy()
        return (self._base + delta).tocsc()

    def _pending_delta(self) -> Optional[csc_matrix]:
        if not self._pending_rows:
            return None
        return coo_matrix(
            (
                np.concatenate(self._pending_vals),
                (
                    np.concatenate(self._pending_rows),
                    np.concatenate(self._pending_cols),
                ),
            ),
            shape=(self._n, self._n),
        ).tocsc()

    # -- updates --------------------------------------------------------

    def update_pairs(self, pairs: np.ndarray, deltas: np.ndarray) -> None:
        """Perturb pairwise conductances: ``A += d (e_i - e_j)(e_i - e_j)^T``.

        Args:
            pairs: ``(r, 2)`` node index pairs.
            deltas: ``(r,)`` conductance changes in W/K (signed).
        """
        pair_arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        delta_arr = self._check_deltas(deltas, pair_arr.shape[0], "pairs")
        self._check_nodes(pair_arr)
        keep = delta_arr != 0.0
        pair_arr, delta_arr = pair_arr[keep], delta_arr[keep]
        if pair_arr.shape[0] == 0:
            return
        i, j = pair_arr[:, 0], pair_arr[:, 1]
        r_new = pair_arr.shape[0]
        u_new = np.zeros((self._n, r_new))
        u_new[i, np.arange(r_new)] = 1.0
        u_new[j, np.arange(r_new)] -= 1.0
        rows = np.concatenate([i, j, i, j])
        cols = np.concatenate([i, j, j, i])
        vals = np.concatenate([delta_arr, delta_arr, -delta_arr, -delta_arr])
        self._push(u_new, delta_arr, rows, cols, vals)

    def update_diagonal(self, nodes: np.ndarray, deltas: np.ndarray) -> None:
        """Perturb grounded conductances: ``A += d e_i e_i^T`` per node."""
        node_arr = np.asarray(nodes, dtype=np.int64).ravel()
        delta_arr = self._check_deltas(deltas, node_arr.shape[0], "nodes")
        self._check_nodes(node_arr)
        keep = delta_arr != 0.0
        node_arr, delta_arr = node_arr[keep], delta_arr[keep]
        if node_arr.shape[0] == 0:
            return
        r_new = node_arr.shape[0]
        u_new = np.zeros((self._n, r_new))
        u_new[node_arr, np.arange(r_new)] = 1.0
        self._push(u_new, delta_arr, node_arr, node_arr, delta_arr)

    def _check_deltas(
        self, deltas: np.ndarray, expected: int, what: str
    ) -> np.ndarray:
        delta_arr = np.asarray(deltas, dtype=float).ravel()
        if delta_arr.shape[0] != expected:
            raise LinalgError(
                f"got {expected} {what} but {delta_arr.shape[0]} deltas"
            )
        if not np.all(np.isfinite(delta_arr)):
            raise LinalgError("update deltas must be finite")
        return delta_arr

    def _check_nodes(self, nodes: np.ndarray) -> None:
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self._n):
            raise LinalgError(
                f"update node indices out of range for n={self._n}"
            )

    def _push(
        self,
        u_new: np.ndarray,
        c_new: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        self._pending_rows.append(np.asarray(rows, dtype=np.int64))
        self._pending_cols.append(np.asarray(cols, dtype=np.int64))
        self._pending_vals.append(np.asarray(vals, dtype=float))
        self._n_batches += 1
        over_rank = self.rank + u_new.shape[1] > self._config.rank_threshold
        over_budget = self._n_batches > self._config.update_budget
        if over_rank or over_budget:
            # Exact refactorization handoff: fold every pending update
            # (including this one) into the base and start clean.
            self._rebuild()
            return
        w_new = self._factor.solve_many(u_new)
        if w_new.ndim == 1:
            w_new = w_new.reshape(self._n, 1)
        self._u = np.hstack([self._u, u_new])
        self._w = np.hstack([self._w, w_new])
        self._c = np.concatenate([self._c, c_new])
        self._cap_lu = None
        profiling.increment("linalg.incremental_updates")

    def _rebuild(self) -> None:
        delta = self._pending_delta()
        if delta is not None:
            self._base = (self._base + delta).tocsc()
        self._factor = factorize(self._base, spd=self._spd, config=self._config)
        self._reset_updates()
        self.n_rebuilds += 1
        profiling.increment("linalg.incremental_rebuilds")

    # -- solves ---------------------------------------------------------

    def _capacitance_solve(self, v: np.ndarray) -> np.ndarray:
        if self._cap_lu is None:
            cap = np.diag(1.0 / self._c) + self._u.T @ self._w
            try:
                self._cap_lu = lu_factor(cap)
            except (ValueError, ArithmeticError) as exc:
                raise LinalgError(
                    f"low-rank capacitance system could not be factorized: "
                    f"{exc}"
                ) from exc
        return lu_solve(self._cap_lu, v)

    def _apply(self, y: np.ndarray) -> np.ndarray:
        if self.rank == 0:
            return y
        correction = self._w @ self._capacitance_solve(self._u.T @ y)
        x = y - correction
        return corrupt(SITE_LINALG_UPDATE, x)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve the *current* (base + updates) system for one RHS."""
        y = self._factor.solve(np.asarray(rhs, dtype=float))
        x = self._apply(y)
        if not np.all(np.isfinite(x)):
            raise LinalgError(
                "incremental solve produced non-finite values; the "
                "accumulated update likely made the system singular"
            )
        if self.rank:
            profiling.increment("linalg.incremental_solves")
        return x

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """Solve the current system for an ``(n, k)`` block of RHS."""
        y = self._factor.solve_many(np.asarray(rhs, dtype=float))
        x = self._apply(y)
        if not np.all(np.isfinite(x)):
            raise LinalgError(
                "incremental multi-RHS solve produced non-finite values"
            )
        if self.rank:
            profiling.increment("linalg.incremental_solves")
        return x

    def refactorize(self) -> None:
        """Force the exact-rebuild handoff now (fold updates, refactorize)."""
        self._rebuild()
