"""Pluggable sparse linear algebra: one interface, selectable backends,
incremental low-rank updates.

Public surface:

* :func:`~repro.linalg.registry.factorize` -- the single sanctioned entry
  point for sparse factorizations (lint rule R5 flags raw ``splu`` calls
  everywhere else).  Selects scipy SuperLU, UMFPACK, or CHOLMOD per problem
  size/availability; optional backends degrade gracefully to SuperLU.
* :class:`~repro.linalg.incremental.IncrementalFactorization` -- Woodbury
  low-rank updates over a cached base factorization, with an exact
  refactorization handoff past a configurable rank threshold or update
  budget.
* :class:`~repro.linalg.config.LinalgConfig` -- the picklable process-wide
  configuration (backend override, incremental on/off, thresholds), shipped
  to evaluation-pool workers exactly like the fault plan and telemetry
  config.

See ``docs/SOLVER_CACHES.md`` for the registry/update semantics and
rank-threshold tuning guidance.
"""

from __future__ import annotations

from .backend import Factorization, SolverBackend
from .backends import CholmodBackend, ScipySuperLUBackend, UmfpackBackend
from .config import (
    DEFAULT_RANK_THRESHOLD,
    DEFAULT_RESIDUAL_RTOL,
    DEFAULT_UPDATE_BUDGET,
    LinalgConfig,
    current_config,
    reset_config,
    set_config,
    use_config,
)
from .incremental import IncrementalFactorization
from .registry import (
    BACKEND_ENV_VAR,
    UMFPACK_MIN_NODES,
    available_backends,
    factorize,
    get_backend,
    register_backend,
    registered_backends,
    select_backend,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "CholmodBackend",
    "DEFAULT_RANK_THRESHOLD",
    "DEFAULT_RESIDUAL_RTOL",
    "DEFAULT_UPDATE_BUDGET",
    "Factorization",
    "IncrementalFactorization",
    "LinalgConfig",
    "ScipySuperLUBackend",
    "SolverBackend",
    "UmfpackBackend",
    "UMFPACK_MIN_NODES",
    "available_backends",
    "current_config",
    "factorize",
    "get_backend",
    "register_backend",
    "registered_backends",
    "reset_config",
    "select_backend",
    "set_config",
    "use_config",
]
