"""The backend interface of :mod:`repro.linalg`.

A :class:`SolverBackend` turns one sparse matrix into a
:class:`Factorization`; a factorization answers single and multi-RHS solves.
Every concrete backend (scipy SuperLU always; UMFPACK and CHOLMOD when their
optional packages are importable) lives in :mod:`repro.linalg.backends` and
is selected through :func:`repro.linalg.registry.factorize` -- nothing
outside ``repro.linalg`` calls ``splu``/``factorized`` directly (lint rule
R5 enforces this).

Error contract: a backend never lets a library-specific exception escape.
Singular systems, near-singular rank warnings, and backend bugs all surface
as :class:`~repro.errors.LinalgError`; callers translate that into their
domain error (``FlowError``/``ThermalError``).
"""

from __future__ import annotations

import abc

import numpy as np
from scipy.sparse import csc_matrix


class Factorization(abc.ABC):
    """A reusable factorization of one sparse system matrix.

    Attributes:
        backend: Name of the backend that produced it.
        n: System dimension.
    """

    backend: str = "abstract"

    def __init__(self, n: int) -> None:
        self.n = int(n)

    @abc.abstractmethod
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` for one right-hand side, shape ``(n,)``."""

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """Solve for a block of right-hand sides, shape ``(n, k)``.

        The default loops over columns; backends whose native solve accepts
        matrix RHS (SuperLU) override this with a single batched call.
        """
        block = np.asarray(rhs, dtype=float)
        if block.ndim == 1:
            return self.solve(block)
        out = np.empty_like(block)
        for k in range(block.shape[1]):
            out[:, k] = self.solve(block[:, k])
        return out


class SolverBackend(abc.ABC):
    """A factorization engine selectable through the registry.

    Attributes:
        name: Registry key (``"scipy-splu"``, ``"umfpack"``, ``"cholmod"``).
        spd_only: Whether the backend only handles symmetric positive
            definite systems (CHOLMOD).
    """

    name: str = "abstract"
    spd_only: bool = False

    @abc.abstractmethod
    def available(self) -> bool:
        """Whether the backend's dependency is importable in this process."""

    @abc.abstractmethod
    def factorize(self, matrix: csc_matrix) -> Factorization:
        """Factorize ``matrix``; raise ``LinalgError`` on failure."""
