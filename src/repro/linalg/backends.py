"""Concrete solver backends: scipy SuperLU, UMFPACK, CHOLMOD.

Only the SuperLU backend is unconditional (scipy is a hard dependency).
UMFPACK (``scikits.umfpack``) and CHOLMOD (``sksparse.cholmod``) are gated
on an import probe at module load: when the optional package is absent the
backend simply reports ``available() == False`` and the registry never
selects it -- no install is ever attempted.

This module is the sanctioned home of raw ``splu``/``factorized`` calls
(lint rule R5): every other module routes factorizations through
:func:`repro.linalg.registry.factorize`.
"""

from __future__ import annotations

import importlib
import warnings
from types import ModuleType
from typing import Any, Optional

import numpy as np
from scipy.sparse import csc_matrix
from scipy.sparse.linalg import MatrixRankWarning, splu

from ..errors import LinalgError
from .backend import Factorization, SolverBackend


def _probe(module_name: str) -> Optional[ModuleType]:
    """Import an optional dependency, or ``None`` when it is absent."""
    try:
        return importlib.import_module(module_name)
    except ImportError:  # pragma: no cover - exercised on scipy-only installs
        return None


#: SuiteSparse UMFPACK via scikit-umfpack, when installed.
_umfpack = _probe("scikits.umfpack")
#: SuiteSparse CHOLMOD via scikit-sparse, when installed.
_cholmod = _probe("sksparse.cholmod")


def _as_csc(matrix: Any) -> csc_matrix:
    converted = matrix.tocsc() if hasattr(matrix, "tocsc") else None
    if converted is None:
        raise LinalgError(
            f"expected a scipy sparse matrix, got {type(matrix).__name__}"
        )
    if converted.shape[0] != converted.shape[1]:
        raise LinalgError(f"system matrix must be square, got {converted.shape}")
    return converted


class _SuperLUFactorization(Factorization):
    backend = "scipy-splu"

    def __init__(self, lu: Any, n: int) -> None:
        super().__init__(n)
        self._lu = lu

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return np.asarray(self._lu.solve(np.asarray(rhs, dtype=float)))

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        # SuperLU's solve natively accepts an (n, k) block.
        return np.asarray(self._lu.solve(np.asarray(rhs, dtype=float)))


class ScipySuperLUBackend(SolverBackend):
    """The always-available reference backend (scipy ``splu``).

    SuperLU reports an exactly singular system as ``RuntimeError`` but only
    *warns* (``MatrixRankWarning``) on near-singular factorizations; both --
    and the ``ValueError``/``ArithmeticError`` shapes other SuperLU entry
    points use -- are promoted to a typed :class:`~repro.errors.LinalgError`.
    """

    name = "scipy-splu"

    def available(self) -> bool:
        return True

    def factorize(self, matrix: csc_matrix) -> Factorization:
        system = _as_csc(matrix)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", MatrixRankWarning)
                lu = splu(system)
        except (
            RuntimeError,
            ValueError,
            ArithmeticError,
            MatrixRankWarning,
        ) as exc:
            raise LinalgError(
                f"scipy-splu factorization failed: {exc}"
            ) from exc
        return _SuperLUFactorization(lu, system.shape[0])


class _UmfpackFactorization(Factorization):
    backend = "umfpack"

    def __init__(self, lu: Any, n: int) -> None:
        super().__init__(n)
        self._lu = lu

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        try:
            return np.asarray(self._lu.solve(np.asarray(rhs, dtype=float)))
        except (RuntimeError, ValueError, ArithmeticError) as exc:
            raise LinalgError(f"umfpack solve failed: {exc}") from exc


class UmfpackBackend(SolverBackend):
    """SuiteSparse UMFPACK via ``scikits.umfpack`` (optional)."""

    name = "umfpack"

    def available(self) -> bool:
        return _umfpack is not None

    def factorize(self, matrix: csc_matrix) -> Factorization:
        if _umfpack is None:
            raise LinalgError(
                "umfpack backend requested but scikits.umfpack is not "
                "installed"
            )
        system = _as_csc(matrix)
        try:
            lu = _umfpack.splu(system)
        except (RuntimeError, ValueError, ArithmeticError) as exc:
            raise LinalgError(f"umfpack factorization failed: {exc}") from exc
        return _UmfpackFactorization(lu, system.shape[0])


class _CholmodFactorization(Factorization):
    backend = "cholmod"

    def __init__(self, factor: Any, n: int) -> None:
        super().__init__(n)
        self._factor = factor

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        try:
            return np.asarray(self._factor(np.asarray(rhs, dtype=float)))
        except (RuntimeError, ValueError, ArithmeticError) as exc:
            raise LinalgError(f"cholmod solve failed: {exc}") from exc


class CholmodBackend(SolverBackend):
    """SuiteSparse CHOLMOD via ``sksparse.cholmod`` (optional, SPD only)."""

    name = "cholmod"
    spd_only = True

    def available(self) -> bool:
        return _cholmod is not None

    def factorize(self, matrix: csc_matrix) -> Factorization:
        if _cholmod is None:
            raise LinalgError(
                "cholmod backend requested but sksparse.cholmod is not "
                "installed"
            )
        system = _as_csc(matrix)
        try:
            factor = _cholmod.cholesky(system)
        except _cholmod.CholmodError as exc:
            raise LinalgError(f"cholmod factorization failed: {exc}") from exc
        return _CholmodFactorization(factor, system.shape[0])
