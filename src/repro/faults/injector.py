"""The process-wide active fault plan and the solver-side hooks.

Solvers call :func:`inject` (action-only sites) or :func:`corrupt`
(value-carrying sites) at their named injection points.  With no active
plan -- the production default -- both are a single ``None`` check and
return immediately; the hooks cost nothing measurable next to a sparse
factorization.

The active plan is deliberately *process-local* module state, following the
same discipline as the worker evaluator of ``repro.optimize.parallel``: it
is installed either by :class:`FaultInjector` in the driving process or by
the pool initializer inside each worker (plans pickle by specs + seed and
re-arm on arrival).
"""

from __future__ import annotations

from typing import Any, Optional, Type, TypeVar

from .plan import FaultPlan

_T = TypeVar("_T")

#: The plan consulted by every hook in this process; ``None`` disables all
#: injection (the production state).
_ACTIVE: Optional[FaultPlan] = None


def set_active_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as this process's active plan; returns the previous
    one (``None`` uninstalls, same as :func:`clear_active_plan`)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


def clear_active_plan() -> Optional[FaultPlan]:
    """Deactivate injection; returns the plan that was active, if any."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def active_plan() -> Optional[FaultPlan]:
    """The currently active plan, or ``None`` when injection is off."""
    return _ACTIVE


def inject(site: str) -> None:
    """Action-only hook: fire any due raise/sleep/exit faults at ``site``."""
    if _ACTIVE is None:
        return
    _ACTIVE.fire(site)


def corrupt(site: str, value: _T) -> _T:
    """Value hook: pass ``value`` through any due faults at ``site``.

    Returns ``value`` untouched when no plan is active; otherwise a
    possibly-damaged copy (action faults may raise or sleep instead).
    """
    if _ACTIVE is None:
        return value
    return _ACTIVE.transform(site, value)


class FaultInjector:
    """Context manager scoping a plan as this process's active plan.

    Nests correctly: the previous plan (or ``None``) is restored on exit,
    even when the body raises.

    ::

        with FaultInjector(plan):
            run_chaos_experiment()
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        self._previous = set_active_plan(self.plan)
        return self.plan

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Any,
    ) -> None:
        set_active_plan(self._previous)
        self._previous = None
