"""Deterministic, seed-driven fault injection for chaos testing.

The production question this package answers: when a candidate network makes
the coupled flow/thermal system ill-posed -- or a worker process hangs, dies,
or slows down -- does the stack degrade gracefully, or does one bad solve
stall an entire SA run?  ``repro.faults`` makes those failures *injectable*
at named sites inside the real solvers, with no monkeypatching, so the
``tests/faults`` chaos suite can prove every fault ends in recovery or a
typed :class:`~repro.errors.ReproError`.

Usage::

    from repro.faults import FaultInjector, FaultPlan, FaultSpec

    plan = FaultPlan(
        [FaultSpec(site="parallel.worker", kind="worker-death", rate=0.3)],
        seed=42,
    )
    with FaultInjector(plan):
        ...  # every solver hook below sees the plan

Hooks (:func:`inject` for action-only sites, :func:`corrupt` for sites that
carry a value through) are zero-cost no-ops when no plan is active: a single
module-global ``None`` check.  Plans are deterministic -- per-spec
``random.Random`` streams derived from ``(seed, spec index, site, kind)`` --
and pickle across process boundaries by shipping only specs + seed, so every
respawned worker re-arms the same schedule.

See ``docs/ROBUSTNESS.md`` for the fault taxonomy and the retry/degradation
policy the injected faults exercise.
"""

from __future__ import annotations

from .injector import (
    FaultInjector,
    active_plan,
    clear_active_plan,
    corrupt,
    inject,
    set_active_plan,
)
from .plan import (
    ACTION_KINDS,
    KIND_DISCONNECT,
    KIND_HANG,
    KIND_INF,
    KIND_NAN,
    KIND_NEGATIVE,
    KIND_RAISE_CRASH,
    KIND_RAISE_INFEASIBLE,
    KIND_SINGULAR,
    KIND_SLOW,
    KIND_TORN_WRITE,
    KIND_WORKER_DEATH,
    KNOWN_KINDS,
    KNOWN_SITES,
    SITE_COOLING_PROBLEM1,
    SITE_COOLING_PROBLEM2,
    SITE_FLOW_MATRIX,
    SITE_FLOW_PRESSURES,
    SITE_IO_POWER_MAP,
    SITE_LINALG_UPDATE,
    SITE_PARALLEL_DISPATCH,
    SITE_PARALLEL_WORKER,
    SITE_SERVER_LEASE_RENEW,
    SITE_SERVER_RECORD,
    SITE_SERVER_WORKER,
    SITE_THERMAL_RC2,
    SITE_THERMAL_RC4,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "ACTION_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "KIND_DISCONNECT",
    "KIND_HANG",
    "KIND_INF",
    "KIND_NAN",
    "KIND_NEGATIVE",
    "KIND_RAISE_CRASH",
    "KIND_RAISE_INFEASIBLE",
    "KIND_SINGULAR",
    "KIND_SLOW",
    "KIND_TORN_WRITE",
    "KIND_WORKER_DEATH",
    "KNOWN_KINDS",
    "KNOWN_SITES",
    "SITE_COOLING_PROBLEM1",
    "SITE_COOLING_PROBLEM2",
    "SITE_FLOW_MATRIX",
    "SITE_FLOW_PRESSURES",
    "SITE_IO_POWER_MAP",
    "SITE_LINALG_UPDATE",
    "SITE_PARALLEL_DISPATCH",
    "SITE_PARALLEL_WORKER",
    "SITE_SERVER_LEASE_RENEW",
    "SITE_SERVER_RECORD",
    "SITE_SERVER_WORKER",
    "SITE_THERMAL_RC2",
    "SITE_THERMAL_RC4",
    "active_plan",
    "clear_active_plan",
    "corrupt",
    "inject",
    "set_active_plan",
]
