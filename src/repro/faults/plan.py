"""Fault plans: which faults fire where, when, and how often.

A :class:`FaultPlan` is a validated, picklable schedule of
:class:`FaultSpec` entries.  Determinism is the design center: every spec
owns a ``random.Random`` stream seeded from ``(plan seed, spec index, site,
kind)``, so a plan replays the same fire/skip decisions on every run, and a
worker process that unpickles the plan re-arms the identical schedule.

This module is a sanctioned error boundary (``repro-lint-scope:
error-boundary``): the ``raise-crash`` kind deliberately raises a *builtin*
``RuntimeError`` to simulate an untyped programming error, which is exactly
what the R4 lint rule forbids everywhere else -- the chaos suite needs it to
prove :func:`~repro.errors.crash_boundary` translates such crashes into
:class:`~repro.errors.CandidateCrashError` instead of swallowing them.
"""

from __future__ import annotations

import os
import random
import time
import zlib
from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, TypeVar, cast

import numpy as np

from .. import profiling
from ..errors import FaultConfigError, InjectedFaultError

_T = TypeVar("_T")

# ---------------------------------------------------------------------------
# Sites
# ---------------------------------------------------------------------------

#: The assembled sparse pressure system, just before factorization.
SITE_FLOW_MATRIX = "flow.unit_solve.matrix"
#: The unit-pressure solution vector, just after the sparse solve.
SITE_FLOW_PRESSURES = "flow.unit_solve.pressures"
#: The 2RM temperature vector returned by the steady solve.
SITE_THERMAL_RC2 = "thermal.rc2.solve"
#: The 4RM temperature vector returned by the steady solve.
SITE_THERMAL_RC4 = "thermal.rc4.solve"
#: Entry of the Problem-1 network evaluation (Algorithm 2).
SITE_COOLING_PROBLEM1 = "cooling.evaluate_problem1"
#: Entry of the Problem-2 network evaluation.
SITE_COOLING_PROBLEM2 = "cooling.evaluate_problem2"
#: Each per-die power map parsed by ``iccad2015.io.read_floorplan``.
SITE_IO_POWER_MAP = "iccad2015.read_floorplan"
#: Inside a pool worker, before it scores a candidate.
SITE_PARALLEL_WORKER = "parallel.worker"
#: In the parent, before a batch is dispatched to the pool.
SITE_PARALLEL_DISPATCH = "parallel.dispatch"
#: The solution of a Woodbury low-rank incremental solve, before the
#: finiteness guard (``repro.linalg`` and the thermal pressure-shift path).
SITE_LINALG_UPDATE = "linalg.update"
#: The serialized job-record bytes, just before the atomic write
#: (``repro.server.records``); the ``torn-write`` kind truncates them so
#: the reader's CRC validation path can be proven.
SITE_SERVER_RECORD = "server.jobstore.record"
#: A worker's lease-renewal heartbeat (``repro.server.leases``).
SITE_SERVER_LEASE_RENEW = "server.lease.renew"
#: Inside a queue worker, between claiming a job and finishing it
#: (``repro.server.worker``); ``worker-death`` here is a SIGKILL mid-job.
SITE_SERVER_WORKER = "server.worker.job"

#: Every injection site, mapped to whether its hook carries a value
#: (:func:`repro.faults.corrupt`) or is action-only
#: (:func:`repro.faults.inject`).
KNOWN_SITES: Mapping[str, bool] = MappingProxyType(
    {
        SITE_FLOW_MATRIX: True,
        SITE_FLOW_PRESSURES: True,
        SITE_THERMAL_RC2: True,
        SITE_THERMAL_RC4: True,
        SITE_COOLING_PROBLEM1: False,
        SITE_COOLING_PROBLEM2: False,
        SITE_IO_POWER_MAP: True,
        SITE_PARALLEL_WORKER: False,
        SITE_PARALLEL_DISPATCH: False,
        SITE_LINALG_UPDATE: True,
        SITE_SERVER_RECORD: True,
        SITE_SERVER_LEASE_RENEW: False,
        SITE_SERVER_WORKER: False,
    }
)

# ---------------------------------------------------------------------------
# Kinds
# ---------------------------------------------------------------------------

#: Zero the sparse system: ``splu`` sees an exactly singular matrix.
KIND_SINGULAR = "singular-system"
#: Cut cell 0 out of the flow graph (zero its row/column): disconnected.
KIND_DISCONNECT = "disconnect"
#: Overwrite one array element with NaN.
KIND_NAN = "nan"
#: Overwrite one array element with +inf.
KIND_INF = "inf"
#: Overwrite one array element with a negative value.
KIND_NEGATIVE = "negative"
#: Raise :class:`~repro.errors.InjectedFaultError` (a typed library error).
KIND_RAISE_INFEASIBLE = "raise-infeasible"
#: Raise a builtin ``RuntimeError`` (an untyped programming error).
KIND_RAISE_CRASH = "raise-crash"
#: Sleep briefly (default 0.05 s) -- a slow worker, not a hung one.
KIND_SLOW = "slow"
#: Sleep long (default 30 s) -- a hang, recoverable only via timeouts.
KIND_HANG = "hang"
#: ``os._exit`` the current process -- a worker killed mid-candidate.
KIND_WORKER_DEATH = "worker-death"
#: Truncate the serialized bytes mid-record -- a torn artifact write.
KIND_TORN_WRITE = "torn-write"

#: Kinds that act (raise, sleep, exit) rather than corrupt a value.
ACTION_KINDS = frozenset(
    {
        KIND_RAISE_INFEASIBLE,
        KIND_RAISE_CRASH,
        KIND_SLOW,
        KIND_HANG,
        KIND_WORKER_DEATH,
    }
)

_MATRIX_SITES = frozenset({SITE_FLOW_MATRIX})
_ARRAY_SITES = frozenset(
    {
        SITE_FLOW_PRESSURES,
        SITE_THERMAL_RC2,
        SITE_THERMAL_RC4,
        SITE_IO_POWER_MAP,
        SITE_LINALG_UPDATE,
    }
)
_ALL_SITES = frozenset(KNOWN_SITES)

#: Sites each kind may attach to.
KNOWN_KINDS: Mapping[str, "frozenset[str]"] = MappingProxyType(
    {
        KIND_SINGULAR: _MATRIX_SITES,
        KIND_DISCONNECT: _MATRIX_SITES,
        KIND_NAN: _ARRAY_SITES,
        KIND_INF: _ARRAY_SITES,
        KIND_NEGATIVE: _ARRAY_SITES,
        KIND_RAISE_INFEASIBLE: _ALL_SITES,
        KIND_RAISE_CRASH: _ALL_SITES,
        KIND_SLOW: _ALL_SITES,
        KIND_HANG: _ALL_SITES,
        KIND_WORKER_DEATH: frozenset(
            {SITE_PARALLEL_WORKER, SITE_SERVER_WORKER}
        ),
        KIND_TORN_WRITE: frozenset({SITE_SERVER_RECORD}),
    }
)

_SLOW_DELAY = 0.05  #: [unit: s]
_HANG_DELAY = 30.0  #: [unit: s]

#: Exit status of a worker killed by :data:`KIND_WORKER_DEATH`.
_DEATH_EXIT_CODE = 17  #: [unit: 1]


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        site: Injection site, one of :data:`KNOWN_SITES`.
        kind: Fault kind, one of :data:`KNOWN_KINDS` (must be compatible
            with the site).
        rate: Probability a due hit actually fires, in [0, 1].
        max_fires: Cap on total fires (per armed plan copy); ``None`` means
            unlimited.
        after: Number of initial site hits to let pass before the fault can
            fire (0 fires from the first hit).
        delay: Sleep length in seconds for ``slow``/``hang``; ``None`` picks
            the kind's default.
    """

    site: str
    kind: str
    rate: float = 1.0
    max_fires: Optional[int] = None
    after: int = 0
    delay: Optional[float] = None


class FaultPlan:
    """A validated, deterministic, picklable schedule of faults.

    Args:
        specs: The :class:`FaultSpec` entries; validated eagerly so a typo
            fails at construction, not silently never-fires.
        seed: Master seed; each spec derives its own independent stream.

    Pickling ships only ``(specs, seed)`` and re-arms counters and RNG
    streams on unpickle, so a respawned worker replays the same schedule
    from the top.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self._validate()
        self._arm()

    # -- construction --------------------------------------------------

    def _validate(self) -> None:
        if not self.specs:
            raise FaultConfigError("fault plan has no specs")
        for i, spec in enumerate(self.specs):
            label = f"spec {i} ({spec.site!r}, {spec.kind!r})"
            if spec.site not in KNOWN_SITES:
                raise FaultConfigError(
                    f"{label}: unknown site; known: {sorted(KNOWN_SITES)}"
                )
            allowed = KNOWN_KINDS.get(spec.kind)
            if allowed is None:
                raise FaultConfigError(
                    f"{label}: unknown kind; known: {sorted(KNOWN_KINDS)}"
                )
            if spec.site not in allowed:
                raise FaultConfigError(
                    f"{label}: kind {spec.kind!r} cannot attach to site "
                    f"{spec.site!r}; allowed sites: {sorted(allowed)}"
                )
            if not 0.0 <= spec.rate <= 1.0:
                raise FaultConfigError(
                    f"{label}: rate must be in [0, 1], got {spec.rate}"
                )
            if spec.max_fires is not None and spec.max_fires < 1:
                raise FaultConfigError(
                    f"{label}: max_fires must be >= 1 or None, "
                    f"got {spec.max_fires}"
                )
            if spec.after < 0:
                raise FaultConfigError(
                    f"{label}: after must be >= 0, got {spec.after}"
                )
            if spec.delay is not None and spec.delay < 0:
                raise FaultConfigError(
                    f"{label}: delay must be >= 0, got {spec.delay}"
                )

    def _arm(self) -> None:
        """(Re)set hit/fire counters and per-spec RNG streams."""
        self._hits = [0] * len(self.specs)
        self._fired = [0] * len(self.specs)
        self._rngs = [
            random.Random(
                zlib.crc32(f"{self.seed}:{i}:{s.site}:{s.kind}".encode())
            )
            for i, s in enumerate(self.specs)
        ]

    # -- pickling ------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        return {"specs": self.specs, "seed": self.seed}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(state["specs"], state["seed"])  # type: ignore[misc]

    # -- bookkeeping ---------------------------------------------------

    def hits(self, site: Optional[str] = None) -> int:
        """Total site hits seen (optionally restricted to one site)."""
        return sum(
            h
            for h, s in zip(self._hits, self.specs)
            if site is None or s.site == site
        )

    def fired(self, site: Optional[str] = None) -> int:
        """Total faults fired so far (optionally restricted to one site)."""
        return sum(
            f
            for f, s in zip(self._fired, self.specs)
            if site is None or s.site == site
        )

    def _due(self, index: int) -> bool:
        """Account one hit against spec ``index``; True when it fires."""
        spec = self.specs[index]
        self._hits[index] += 1
        if spec.max_fires is not None and self._fired[index] >= spec.max_fires:
            return False
        if self._hits[index] <= spec.after:
            return False
        if spec.rate < 1.0 and self._rngs[index].random() >= spec.rate:
            return False
        self._fired[index] += 1
        profiling.increment("faults.injected")
        profiling.increment(f"faults.injected.{spec.kind}")
        return True

    # -- execution -----------------------------------------------------

    def fire(self, site: str) -> None:
        """Run every due action fault at an action-only site."""
        for i, spec in enumerate(self.specs):
            if spec.site == site and self._due(i):
                self._act(spec)

    def transform(self, site: str, value: _T) -> _T:
        """Run every due fault at a value-carrying site.

        Action kinds may raise or sleep; corruption kinds return a damaged
        *copy* of ``value`` (the caller's object is never mutated in place,
        so solver caches cannot be poisoned behind the hook's back).
        """
        for i, spec in enumerate(self.specs):
            if spec.site != site or not self._due(i):
                continue
            if spec.kind in ACTION_KINDS:
                self._act(spec)
            else:
                value = cast(_T, _corrupt_value(spec.kind, value))
        return value

    def _act(self, spec: FaultSpec) -> None:
        if spec.kind == KIND_RAISE_INFEASIBLE:
            raise InjectedFaultError(
                f"injected infeasibility at {spec.site}"
            )
        if spec.kind == KIND_RAISE_CRASH:
            # Deliberately untyped: simulates a genuine programming error
            # that crash_boundary must translate, never swallow.
            raise RuntimeError(f"injected crash at {spec.site}")
        if spec.kind in (KIND_SLOW, KIND_HANG):
            default = _SLOW_DELAY if spec.kind == KIND_SLOW else _HANG_DELAY
            time.sleep(default if spec.delay is None else spec.delay)
            return
        if spec.kind == KIND_WORKER_DEATH:
            os._exit(_DEATH_EXIT_CODE)


def _corrupt_value(kind: str, value: Any) -> Any:
    """Return a damaged copy of ``value`` according to ``kind``."""
    if kind == KIND_TORN_WRITE:
        # Cut serialized bytes mid-record: the write itself stays atomic,
        # but the artifact that lands on disk is truncated, which is what a
        # reader sees after a torn in-place write or silent fs corruption.
        return bytes(value)[: max(len(value) // 2, 1)]
    if kind == KIND_SINGULAR:
        return value * 0.0
    if kind == KIND_DISCONNECT:
        damaged = value.tolil(copy=True)
        damaged[0, :] = 0.0
        damaged[:, 0] = 0.0
        return damaged.tocsc()
    arr = np.array(value, dtype=float, copy=True)
    if kind == KIND_NAN:
        arr.flat[0] = np.nan
    elif kind == KIND_INF:
        arr.flat[0] = np.inf
    elif kind == KIND_NEGATIVE:
        arr.flat[0] = -abs(float(arr.flat[0])) - 1.0
    return arr
