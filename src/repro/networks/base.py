"""Shared building blocks for network generators.

With the paper's TSV reservation (TSVs at odd rows and odd columns), the
routable area of the channel layer is the union of the even rows and even
columns: horizontal channels run on even rows ("tracks"), vertical connectors
on even columns.  Generators in this package carve on that track graph and
route around restricted areas with a breadth-first search when needed.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..constants import CELL_WIDTH
from ..errors import DesignRuleError, GeometryError
from ..geometry.grid import ChannelGrid
from ..geometry.region import Rect

#: The eight global flow directions of Fig. 8(a), realized as the D4 symmetry
#: transforms (rotations x flip) of a canonical west-to-east design.
GLOBAL_DIRECTIONS: Tuple[Tuple[int, bool], ...] = (
    (0, False),
    (1, False),
    (2, False),
    (3, False),
    (0, True),
    (1, True),
    (2, True),
    (3, True),
)


def empty_grid(
    nrows: int,
    ncols: int,
    cell_width: float = CELL_WIDTH,
    restricted: Sequence[Rect] = (),
) -> ChannelGrid:
    """An all-solid grid with the paper's alternating TSV reservation."""
    return ChannelGrid(
        nrows,
        ncols,
        cell_width=cell_width,
        tsv_mask="alternating",
        restricted=restricted,
    )


def channel_tracks(nrows: int) -> List[int]:
    """Row indices usable as full horizontal channels (the even rows)."""
    return list(range(0, nrows, 2))


def connector_columns(ncols: int) -> List[int]:
    """Column indices usable as vertical connectors (the even columns)."""
    return list(range(0, ncols, 2))


def apply_direction(grid: ChannelGrid, direction: int) -> ChannelGrid:
    """Reorient a canonical west-to-east network to one of the eight
    global flow directions (index into :data:`GLOBAL_DIRECTIONS`)."""
    if not 0 <= direction < len(GLOBAL_DIRECTIONS):
        raise GeometryError(
            f"direction must be in [0, {len(GLOBAL_DIRECTIONS)}), got {direction}"
        )
    rotations, flip = GLOBAL_DIRECTIONS[direction]
    if rotations == 0 and not flip:
        return grid.copy()
    return grid.transformed(rotations, flip)


def canonical_dims(nrows: int, ncols: int, direction: int) -> Tuple[int, int]:
    """Grid dims a canonical design must use so the final frame is
    ``nrows x ncols`` after :func:`apply_direction`."""
    rotations, _ = GLOBAL_DIRECTIONS[direction]
    return (ncols, nrows) if rotations % 2 else (nrows, ncols)


def canonical_cell(
    cell: Tuple[int, int], nrows: int, ncols: int, direction: int
) -> Tuple[int, int]:
    """Map a cell given in the *final* frame back to the canonical frame.

    ``nrows``/``ncols`` are the final-frame dimensions.  Inverse of the
    transform :func:`apply_direction` applies.
    """
    rotations, flip = GLOBAL_DIRECTIONS[direction]
    r, c = cell
    nr, nc = nrows, ncols
    if flip:
        r = nr - 1 - r
    for _ in range(rotations):
        # Invert one CCW rotation step: forward maps (r, c) in (h, w) to
        # (w - 1 - c, r) in (w, h); the inverse is (a, b) -> (b, nr - 1 - a).
        r, c = c, nr - 1 - r
        nr, nc = nc, nr
    return (r, c)


def canonical_rects(
    rects: Sequence[Rect], nrows: int, ncols: int, direction: int
) -> Tuple[Rect, ...]:
    """Map final-frame restriction rectangles into the canonical frame.

    Designs are carved west-to-east and then reoriented; restricted areas are
    specified in the final (chip) frame, so the carver must avoid their
    *pre-image* under the direction transform.
    """
    out = []
    for rect in rects:
        corner_a = canonical_cell((rect.row0, rect.col0), nrows, ncols, direction)
        corner_b = canonical_cell(
            (rect.row1 - 1, rect.col1 - 1), nrows, ncols, direction
        )
        r0 = min(corner_a[0], corner_b[0])
        r1 = max(corner_a[0], corner_b[0]) + 1
        c0 = min(corner_a[1], corner_b[1])
        c1 = max(corner_a[1], corner_b[1]) + 1
        out.append(Rect(r0, c0, r1, c1))
    return tuple(out)


def carve_path(
    grid: ChannelGrid,
    start: Tuple[int, int],
    goal: Tuple[int, int],
) -> List[Tuple[int, int]]:
    """Carve a shortest legal channel path from ``start`` to ``goal``.

    Cells are traversable when they are neither TSV-reserved nor restricted.
    The path is found by BFS with a preference for continuing in the current
    direction, which keeps routes straight where possible.  The carved cells
    are returned; raises :class:`~repro.errors.DesignRuleError` when no route
    exists.
    """
    nrows, ncols = grid.nrows, grid.ncols
    blocked = grid.tsv_mask | grid.restricted_mask
    for point in (start, goal):
        if not grid.in_bounds(*point):
            raise GeometryError(f"path endpoint {point} outside grid")
        if blocked[point]:
            raise DesignRuleError(f"path endpoint {point} is not carvable")
    # BFS over (cell) with parent tracking; neighbor order biases straightness.
    parents = {start: None}
    queue = deque([start])
    found = start == goal
    while queue and not found:
        current = queue.popleft()
        prev = parents[current]
        steps = [(0, 1), (0, -1), (1, 0), (-1, 0)]
        if prev is not None:
            heading = (current[0] - prev[0], current[1] - prev[1])
            steps.sort(key=lambda s: s != heading)
        for dr, dc in steps:
            nxt = (current[0] + dr, current[1] + dc)
            if not (0 <= nxt[0] < nrows and 0 <= nxt[1] < ncols):
                continue
            if blocked[nxt] or nxt in parents:
                continue
            parents[nxt] = current
            if nxt == goal:
                found = True
                break
            queue.append(nxt)
    if not found:
        raise DesignRuleError(f"no carvable route from {start} to {goal}")
    path = [goal]
    while parents[path[-1]] is not None:
        path.append(parents[path[-1]])
    path.reverse()
    for row, col in path:
        grid.set_liquid(row, col)
    return path


def carve_ring_around(grid: ChannelGrid, rect: Rect) -> None:
    """Surround a restricted rectangle with a liquid ring on legal tracks.

    The ring follows the nearest even row above/below and the nearest even
    column left/right of the rectangle, so interrupted straight channels can
    reconnect around the obstacle (how the paper handles case 3's forbidden
    region in both baselines and tree designs).
    """
    top = _nearest_even_at_most(rect.row0 - 1)
    bottom = _nearest_even_at_least(rect.row1)
    left = _nearest_even_at_most(rect.col0 - 1)
    right = _nearest_even_at_least(rect.col1)
    if top is None or left is None:
        raise DesignRuleError(
            f"restricted rect {rect} touches the north/west boundary; "
            "no room for a ring"
        )
    if bottom >= grid.nrows or right >= grid.ncols:
        raise DesignRuleError(
            f"restricted rect {rect} touches the south/east boundary; "
            "no room for a ring"
        )
    grid.carve_horizontal(top, left, right)
    grid.carve_horizontal(bottom, left, right)
    grid.carve_vertical(left, top, bottom)
    grid.carve_vertical(right, top, bottom)


def _nearest_even_at_most(index: int) -> Optional[int]:
    if index < 0:
        return None
    return index if index % 2 == 0 else index - 1


def _nearest_even_at_least(index: int) -> int:
    return index if index % 2 == 0 else index + 1


def blocked_columns(grid: ChannelGrid, row: int) -> np.ndarray:
    """Columns of ``row`` that cannot be carved (TSV or restricted)."""
    return np.nonzero(grid.tsv_mask[row] | grid.restricted_mask[row])[0]


def row_is_clear(grid: ChannelGrid, row: int, col0: int, col1: int) -> bool:
    """Whether ``row`` is carvable across columns ``[col0, col1]``."""
    lo, hi = sorted((col0, col1))
    segment = (
        grid.tsv_mask[row, lo : hi + 1] | grid.restricted_mask[row, lo : hi + 1]
    )
    return not segment.any()
