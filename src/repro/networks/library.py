"""A named sample set of cooling networks covering all styles.

The Fig. 9 accuracy/speed sweep evaluates the 2RM model over "40 network
samples covering straight-channel networks, the proposed tree-like networks,
and many styles of manual designs".  :func:`sample_networks` reproduces that
mix deterministically for any grid size.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..constants import CELL_WIDTH
from ..geometry.grid import ChannelGrid
from .serpentine import (
    coiled_network,
    ladder_network,
    serpentine_network,
    variable_pitch_network,
)
from .straight import straight_network
from .tree import plan_tree_bands

#: Style labels used to group Fig. 9(a) error curves.
STYLE_STRAIGHT = "straight"
STYLE_TREE = "tree"
STYLE_MANUAL = "manual"


def sample_networks(
    nrows: int,
    ncols: int,
    cell_width: float = CELL_WIDTH,
    n_tree_variants: int = 8,
    seed: int = 2015,
) -> List[Tuple[str, str, ChannelGrid]]:
    """Build the deterministic sample set for model-comparison sweeps.

    Returns:
        A list of ``(name, style, grid)`` tuples: straight channels in
        several directions and pitches, tree-like networks with varied branch
        parameters, and manual designs (serpentines, ladders, coils,
        variable pitch).
    """
    rng = np.random.default_rng(seed)
    samples: List[Tuple[str, str, ChannelGrid]] = []

    for direction in range(4):
        samples.append(
            (
                f"straight_d{direction}",
                STYLE_STRAIGHT,
                straight_network(nrows, ncols, direction, cell_width=cell_width),
            )
        )
    for pitch in (4, 6):
        samples.append(
            (
                f"straight_p{pitch}",
                STYLE_STRAIGHT,
                straight_network(nrows, ncols, 0, pitch=pitch, cell_width=cell_width),
            )
        )

    base_plan = plan_tree_bands(nrows, ncols, cell_width=cell_width)
    last_even = (ncols - 1) - (ncols - 1) % 2
    for variant in range(n_tree_variants):
        params = base_plan.params().astype(float)
        jitter = rng.integers(-ncols // 4, ncols // 4 + 1, size=params.shape)
        params = base_plan.clamp_params(params + 2 * (jitter // 2))
        direction = int(rng.integers(0, 4))
        plan = base_plan.with_params(params).with_direction(direction)
        samples.append((f"tree_v{variant}", STYLE_TREE, plan.build()))

    manual_builders = [
        ("serpentine_p2", lambda: serpentine_network(nrows, ncols, 0, 2, cell_width)),
        ("serpentine_p4", lambda: serpentine_network(nrows, ncols, 0, 4, cell_width)),
        ("serpentine_d1", lambda: serpentine_network(nrows, ncols, 1, 4, cell_width)),
        ("ladder_p2", lambda: ladder_network(nrows, ncols, 0, 2, cell_width)),
        ("ladder_p4", lambda: ladder_network(nrows, ncols, 0, 4, cell_width)),
        ("coiled_p4", lambda: coiled_network(nrows, ncols, 0, 4, cell_width)),
        (
            "varpitch_half",
            lambda: variable_pitch_network(nrows, ncols, 0, 0.5, cell_width),
        ),
        (
            "varpitch_third",
            lambda: variable_pitch_network(nrows, ncols, 0, 0.34, cell_width),
        ),
    ]
    for name, builder in manual_builders:
        samples.append((name, STYLE_MANUAL, builder()))
    return samples
