"""Cooling network generators.

* :mod:`~repro.networks.straight` -- regular straight microchannels, the
  baseline nearly all prior work assumes (Fig. 1(b)).
* :mod:`~repro.networks.serpentine` -- serpentine and manual exploration
  styles, standing in for the hand-crafted designs of the paper's early
  exploration and the ICCAD contest winner.
* :mod:`~repro.networks.tree` -- the paper's hierarchical tree-like
  structure (Fig. 7): coolant flows from tree roots to leaves, each tree
  configured by the positions of its first and second branches.
* :mod:`~repro.networks.library` -- a named sample set covering all styles,
  used by the Fig. 9 accuracy/speed sweeps.
"""

from .base import (
    GLOBAL_DIRECTIONS,
    apply_direction,
    carve_path,
    carve_ring_around,
    channel_tracks,
    empty_grid,
)
from .straight import straight_network
from .serpentine import (
    coiled_network,
    ladder_network,
    serpentine_network,
    variable_pitch_network,
)
from .tree import (
    TreePlan,
    TreeSpec,
    plan_tree_bands,
    power_aware_initialization,
    tree_network,
)
from .library import sample_networks

__all__ = [
    "GLOBAL_DIRECTIONS",
    "TreePlan",
    "TreeSpec",
    "apply_direction",
    "carve_path",
    "carve_ring_around",
    "channel_tracks",
    "coiled_network",
    "empty_grid",
    "ladder_network",
    "plan_tree_bands",
    "power_aware_initialization",
    "sample_networks",
    "serpentine_network",
    "straight_network",
    "tree_network",
    "variable_pitch_network",
]
