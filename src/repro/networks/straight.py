"""Regular straight microchannels -- the baseline of nearly all prior work.

The canonical design runs full-width channels west to east on every ``pitch``-th
track (even rows keep clear of the TSV reservation), with one continuous inlet
on the west side and one continuous outlet on the east side.  Restricted areas
interrupt the affected channels and a liquid ring reconnects them around the
obstacle, matching the paper's handling of benchmark case 3.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..constants import CELL_WIDTH
from ..errors import GeometryError
from ..geometry.grid import ChannelGrid, PortKind, Side
from ..geometry.region import Rect
from .base import (
    apply_direction,
    canonical_dims,
    canonical_rects,
    carve_ring_around,
    channel_tracks,
    empty_grid,
)


def straight_network(
    nrows: int,
    ncols: int,
    direction: int = 0,
    pitch: int = 2,
    cell_width: float = CELL_WIDTH,
    restricted: Sequence[Rect] = (),
) -> ChannelGrid:
    """Build a straight-channel network.

    Args:
        nrows / ncols: Grid size in basic cells.
        direction: Global flow direction index (0 = west to east; see
            :data:`~repro.networks.base.GLOBAL_DIRECTIONS`).
        pitch: Track spacing in rows; must be even and >= 2 so channels stay
            off the TSV rows.
        cell_width: Basic-cell edge length in meters.
        restricted: Forbidden rectangles; interrupted channels are re-joined
            by a ring around each rectangle.

    Returns:
        A :class:`~repro.geometry.grid.ChannelGrid` with ports attached.
    """
    if pitch < 2 or pitch % 2 != 0:
        raise GeometryError(f"pitch must be even and >= 2, got {pitch}")
    # Carve in the canonical west-to-east frame; restricted areas are given
    # in the final frame and must be pre-imaged through the direction map.
    c_rows, c_cols = canonical_dims(nrows, ncols, direction)
    c_restricted = canonical_rects(restricted, nrows, ncols, direction)
    grid = empty_grid(c_rows, c_cols, cell_width, c_restricted)
    rows = channel_tracks(c_rows)[:: pitch // 2]
    for row in rows:
        _carve_row_skipping_restricted(grid, row)
    for rect in c_restricted:
        carve_ring_around(grid, rect)
    grid.add_port_span(PortKind.INLET, Side.WEST, 0, c_rows)
    grid.add_port_span(PortKind.OUTLET, Side.EAST, 0, c_rows)
    return apply_direction(grid, direction)


def _carve_row_skipping_restricted(grid: ChannelGrid, row: int) -> None:
    """Carve a full-width channel, leaving restricted cells solid."""
    free = ~(grid.restricted_mask[row] | grid.tsv_mask[row])
    cols = np.nonzero(free)[0]
    if cols.size == 0:
        return
    # Carve each maximal free run.
    breaks = np.nonzero(np.diff(cols) > 1)[0]
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [cols.size - 1]))
    for s, e in zip(starts, ends):
        grid.carve_horizontal(row, int(cols[s]), int(cols[e]))
