"""Hierarchical tree-like cooling networks (Section 4.3, Fig. 7).

The chip's channel tracks are partitioned into horizontal *bands*; each band
hosts one "tree" through which coolant flows from a single root at the inlet
side to several leaf channels at the outlet side.  A tree splits twice: the
trunk fans out into ``arity1`` children at column ``b1`` and every child fans
out again at column ``b2``, giving ``arity1 * arity2`` leaves.  The two branch
positions per tree are exactly the parameters the paper's simulated annealing
searches; the split arities are the "branch types" assigned manually to fit
the chip size (Fig. 8(b)).

The structure compensates the two unavoidable gradient factors of Section 3:
wall surface area grows from root to leaves (evening out the upstream/
downstream difference), and per-tree fluid resistance can differ between
bands (evening out non-uniform die power).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..constants import CELL_WIDTH
from ..errors import DesignRuleError, GeometryError
from ..geometry.grid import ChannelGrid, PortKind, Side
from ..geometry.region import Rect
from .base import (
    apply_direction,
    canonical_dims,
    canonical_rects,
    carve_path,
    channel_tracks,
    empty_grid,
    row_is_clear,
)


@dataclass(frozen=True)
class TreeSpec:
    """One tree of the hierarchical structure.

    Attributes:
        tracks: Even row indices of the leaf channels, ascending; its length
            must equal ``arity1 * arity2``.
        arity1: Fan-out of the first branch (1, 2 or 3).
        arity2: Fan-out of the second branch (1, 2 or 3).
        b1: Column of the first branch point (snapped even).
        b2: Column of the second branch point (snapped even, >= b1).
    """

    tracks: Tuple[int, ...]
    arity1: int
    arity2: int
    b1: int
    b2: int

    def __post_init__(self) -> None:
        if self.arity1 < 1 or self.arity2 < 1:
            raise GeometryError(
                f"branch arities must be >= 1, got ({self.arity1}, {self.arity2})"
            )
        if len(self.tracks) != self.arity1 * self.arity2:
            raise GeometryError(
                f"tree with arities ({self.arity1}, {self.arity2}) needs "
                f"{self.arity1 * self.arity2} leaf tracks, got {len(self.tracks)}"
            )
        if any(t % 2 != 0 for t in self.tracks):
            raise GeometryError(f"leaf tracks must be even rows, got {self.tracks}")
        if list(self.tracks) != sorted(self.tracks):
            raise GeometryError(f"leaf tracks must be ascending, got {self.tracks}")
        if self.b1 % 2 != 0 or self.b2 % 2 != 0:
            raise GeometryError(
                f"branch columns must be even, got ({self.b1}, {self.b2})"
            )
        if not 0 <= self.b1 <= self.b2:
            raise GeometryError(
                f"need 0 <= b1 <= b2, got ({self.b1}, {self.b2})"
            )

    @property
    def n_leaves(self) -> int:
        """Leaf channel count (= arity1 * arity2)."""
        return len(self.tracks)

    @property
    def trunk_row(self) -> int:
        """Row of the root channel (the band's middle track)."""
        return self.tracks[(len(self.tracks) - 1) // 2]

    def child_groups(self) -> List[Tuple[int, ...]]:
        """Partition the leaf tracks into ``arity1`` contiguous groups."""
        groups = []
        for i in range(self.arity1):
            groups.append(self.tracks[i * self.arity2 : (i + 1) * self.arity2])
        return groups

    def with_branches(self, b1: int, b2: int) -> "TreeSpec":
        """A copy with different branch columns."""
        return replace(self, b1=b1, b2=b2)


def carve_tree(grid: ChannelGrid, spec: TreeSpec) -> None:
    """Carve one tree onto the grid (west-to-east canonical orientation).

    Straight segments that hit a restricted area are rerouted with a BFS
    detour on the track graph.
    """
    ncols = grid.ncols
    b1 = min(spec.b1, ncols - 1)
    b2 = min(spec.b2, ncols - 1)
    trunk = spec.trunk_row
    groups = spec.child_groups()
    child_rows = [g[(len(g) - 1) // 2] for g in groups]
    # Branch junctions must sit on carvable columns; restricted areas push
    # them to the nearest legal even column.
    band_lo = min(spec.tracks)
    band_hi = max(spec.tracks)
    if spec.arity1 > 1:
        b1 = _fit_branch_col(grid, b1, band_lo, band_hi)
    if spec.arity2 > 1:
        b2 = _fit_branch_col(grid, b2, band_lo, band_hi)
    b1, b2 = min(b1, b2), max(b1, b2)
    _carve_h(grid, trunk, 0, b1)
    if spec.arity1 > 1:
        lo = min(child_rows + [trunk])
        hi = max(child_rows + [trunk])
        _carve_v(grid, b1, lo, hi)
    for child_row, group in zip(child_rows, groups):
        if spec.arity2 > 1:
            _carve_h(grid, child_row, b1, b2)
            lo = min(group + (child_row,))
            hi = max(group + (child_row,))
            _carve_v(grid, b2, lo, hi)
            for leaf in group:
                _carve_h(grid, leaf, b2, ncols - 1)
        else:
            _carve_h(grid, child_row, b1, ncols - 1)


def tree_network(
    nrows: int,
    ncols: int,
    specs: Sequence[TreeSpec],
    direction: int = 0,
    cell_width: float = CELL_WIDTH,
    restricted: Sequence[Rect] = (),
) -> ChannelGrid:
    """Build a complete tree-like cooling network from per-band specs.

    Specs describe trees in the canonical west-to-east frame; ``restricted``
    rectangles are given in the final frame and pre-imaged internally.
    """
    c_rows, c_cols = canonical_dims(nrows, ncols, direction)
    c_restricted = canonical_rects(restricted, nrows, ncols, direction)
    grid = empty_grid(c_rows, c_cols, cell_width, c_restricted)
    used: set = set()
    for spec in specs:
        overlap = used.intersection(spec.tracks)
        if overlap:
            raise GeometryError(
                f"leaf tracks {sorted(overlap)} assigned to multiple trees"
            )
        used.update(spec.tracks)
        carve_tree(grid, spec)
    grid.add_port_span(PortKind.INLET, Side.WEST, 0, c_rows)
    grid.add_port_span(PortKind.OUTLET, Side.EAST, 0, c_rows)
    return apply_direction(grid, direction)


@dataclass
class TreePlan:
    """A parameterized family of tree networks over one chip footprint.

    The plan fixes the band structure (which tracks belong to which tree and
    the branch arities); the free parameters are the ``(b1, b2)`` columns of
    every tree, which the optimizer mutates.
    """

    nrows: int
    ncols: int
    specs: List[TreeSpec]
    direction: int = 0
    cell_width: float = CELL_WIDTH
    restricted: Tuple[Rect, ...] = ()

    @property
    def n_trees(self) -> int:
        """Number of tree bands in the plan."""
        return len(self.specs)

    def params(self) -> np.ndarray:
        """Current branch parameters, shape (n_trees, 2)."""
        return np.array([[s.b1, s.b2] for s in self.specs], dtype=int)

    def clamp_params(self, params: np.ndarray) -> np.ndarray:
        """Snap parameters to even columns inside the chip, keep b1 <= b2."""
        params = np.asarray(params, dtype=float)
        snapped = 2 * np.round(params / 2.0)
        last_even = (self.ncols - 1) - (self.ncols - 1) % 2
        snapped = np.clip(snapped, 0, last_even).astype(int)
        b1 = np.minimum(snapped[:, 0], snapped[:, 1])
        b2 = np.maximum(snapped[:, 0], snapped[:, 1])
        return np.stack([b1, b2], axis=1)

    def with_params(self, params: np.ndarray) -> "TreePlan":
        """A copy with new (clamped) branch-position parameters."""
        params = self.clamp_params(params)
        if params.shape != (self.n_trees, 2):
            raise GeometryError(
                f"parameter array must be ({self.n_trees}, 2), got {params.shape}"
            )
        specs = [
            spec.with_branches(int(row[0]), int(row[1]))
            for spec, row in zip(self.specs, params)
        ]
        return replace(self, specs=specs)

    def with_direction(self, direction: int) -> "TreePlan":
        """A copy targeting a different global flow direction."""
        return replace(self, direction=direction)

    def build(self) -> ChannelGrid:
        """Materialize the current configuration as a channel grid."""
        return tree_network(
            self.nrows,
            self.ncols,
            self.specs,
            direction=self.direction,
            cell_width=self.cell_width,
            restricted=self.restricted,
        )


def plan_tree_bands(
    nrows: int,
    ncols: int,
    leaves_per_tree: int = 4,
    direction: int = 0,
    cell_width: float = CELL_WIDTH,
    restricted: Sequence[Rect] = (),
) -> TreePlan:
    """Partition the chip into tree bands and initialize branch positions.

    Most bands get the standard binary-binary tree (``leaves_per_tree``
    leaves); the leftover tracks at the bottom are covered with a smaller
    tree whose branch type is chosen to fit (the manual assignment of
    Fig. 8(b)).  Branch positions start uniform at one third and two thirds
    of the chip width, the paper's pre-search initialization.
    """
    if leaves_per_tree not in (2, 3, 4, 6, 9):
        raise GeometryError(
            f"leaves_per_tree must be one of 2, 3, 4, 6, 9; got {leaves_per_tree}"
        )
    c_rows, c_cols = canonical_dims(nrows, ncols, direction)
    tracks = channel_tracks(c_rows)
    b1_init = _snap_even(c_cols // 3)
    b2_init = _snap_even(2 * c_cols // 3)
    specs: List[TreeSpec] = []
    index = 0
    while len(tracks) - index >= leaves_per_tree:
        band = tuple(tracks[index : index + leaves_per_tree])
        arity1, arity2 = _ARITIES[leaves_per_tree]
        specs.append(TreeSpec(band, arity1, arity2, b1_init, b2_init))
        index += leaves_per_tree
    while index < len(tracks):
        remainder = len(tracks) - index
        size = max(s for s in (4, 3, 2, 1) if s <= remainder)
        band = tuple(tracks[index : index + size])
        arity1, arity2 = _ARITIES[size]
        specs.append(TreeSpec(band, arity1, arity2, b1_init, b2_init))
        index += size
    return TreePlan(
        nrows=nrows,
        ncols=ncols,
        specs=specs,
        direction=direction,
        cell_width=cell_width,
        restricted=tuple(restricted),
    )


#: Branch-type assignment per band size (the three usable branch shapes:
#: 1-to-2, 1-to-3 and pass-through).
_ARITIES = {
    1: (1, 1),
    2: (2, 1),
    3: (3, 1),
    4: (2, 2),
    6: (2, 3),
    9: (3, 3),
}


def _snap_even(col: int) -> int:
    return col - col % 2


def _fit_branch_col(grid: ChannelGrid, col: int, row_lo: int, row_hi: int) -> int:
    """The even column nearest ``col`` whose band span avoids restrictions.

    A branch junction needs a vertical connector across the tree's band;
    restricted rectangles (case 3) can cover the requested column, in which
    case the junction slides sideways to the closest legal even column.
    """
    col = _snap_even(max(0, min(col, grid.ncols - 1)))
    restricted = grid.restricted_mask
    for offset in range(0, grid.ncols, 2):
        for candidate in (col - offset, col + offset):
            if not 0 <= candidate < grid.ncols:
                continue
            if not restricted[row_lo : row_hi + 1, candidate].any():
                return candidate
    raise DesignRuleError(
        f"no legal branch column near {col} for band rows "
        f"[{row_lo}, {row_hi}]"
    )


def _carve_h(grid: ChannelGrid, row: int, col0: int, col1: int) -> None:
    lo, hi = sorted((col0, col1))
    if row_is_clear(grid, row, lo, hi):
        grid.carve_horizontal(row, lo, hi)
    else:
        carve_path(grid, (row, lo), (row, hi))


def _carve_v(grid: ChannelGrid, col: int, row0: int, row1: int) -> None:
    lo, hi = sorted((row0, row1))
    blocked = (
        grid.tsv_mask[lo : hi + 1, col] | grid.restricted_mask[lo : hi + 1, col]
    )
    if not blocked.any():
        grid.carve_vertical(col, lo, hi)
    else:
        carve_path(grid, (lo, col), (hi, col))


def power_aware_initialization(plan: TreePlan, power_map: np.ndarray) -> TreePlan:
    """Seed branch positions from the per-band power distribution.

    Section 3's compensation idea in closed form: bands dissipating more
    power get earlier branch points (more leaf channels sooner, hence more
    wall area and lower fluid resistance), cooler bands split later.  The
    result is a better SA starting point than the uniform initialization --
    the search still refines it.

    Args:
        plan: A tree plan (canonical frame; square footprints assumed for
            rotated directions).
        power_map: (nrows, ncols) power map in the *final* chip frame.

    Returns:
        A new plan with per-tree ``(b1, b2)`` scaled by band power.
    """
    power = np.asarray(power_map, dtype=float)
    if power.shape != (plan.nrows, plan.ncols):
        raise GeometryError(
            f"power map shape {power.shape} does not match plan footprint "
            f"({plan.nrows}, {plan.ncols})"
        )
    # Specs live in the canonical west-to-east frame; pull the power map
    # back through the direction transform so band rows line up.
    from .base import GLOBAL_DIRECTIONS

    rotations, flip = GLOBAL_DIRECTIONS[plan.direction]
    if flip:
        power = np.flipud(power)
    if rotations:
        power = np.rot90(power, -rotations)
    # Band power per tree (rows of the band, full width).
    band_density = []
    for spec in plan.specs:
        lo = min(spec.tracks)
        hi = max(spec.tracks) + 1
        band_density.append(power[lo:hi, :].sum() / (hi - lo))
    density = np.asarray(band_density)
    mean_density = density.mean() if density.size else 1.0
    if mean_density <= 0:
        return plan.with_params(plan.params())
    # Hot bands (ratio > 1) pull branches toward the inlet; cold bands push
    # them downstream.  The shift spans about a quarter chip at 2x contrast.
    # Density (power per track row) keeps unequal band sizes comparable.
    ratio = density / mean_density
    base_b1 = plan.ncols / 3.0
    base_b2 = 2.0 * plan.ncols / 3.0
    shift = np.clip((ratio - 1.0) * (plan.ncols / 4.0), -plan.ncols / 3.0, plan.ncols / 3.0)
    params = np.stack(
        [base_b1 - shift, base_b2 - shift / 2.0], axis=1
    )
    return plan.with_params(plan.clamp_params(params))
