"""Serpentine, ladder and variable-pitch manual design styles.

These stand in for the "many styles of manual designs generated during our
early exploration" the paper uses in the Fig. 9 sweep and for the
contest-winner comparison row of Table 3.
"""

from __future__ import annotations

from typing import Sequence

from ..constants import CELL_WIDTH
from ..errors import GeometryError
from ..geometry.grid import ChannelGrid, PortKind, Side
from ..geometry.region import Rect
from .base import (
    apply_direction,
    carve_ring_around,
    channel_tracks,
    empty_grid,
    row_is_clear,
)


def serpentine_network(
    nrows: int,
    ncols: int,
    direction: int = 0,
    pitch: int = 2,
    cell_width: float = CELL_WIDTH,
) -> ChannelGrid:
    """One long channel snaking over the chip.

    The channel enters on the west side of the first track, runs east, drops
    to the next track through a vertical connector at the east edge, runs
    back west, and so on.  It exits at whichever side the final track ends
    on.  Serpentines maximize channel length (large fluid resistance) and are
    a classic manual style.
    """
    if pitch < 2 or pitch % 2 != 0:
        raise GeometryError(f"pitch must be even and >= 2, got {pitch}")
    grid = empty_grid(nrows, ncols, cell_width)
    rows = channel_tracks(nrows)[:: pitch // 2]
    east_col = _even_boundary_col(ncols, Side.EAST)
    west_col = 0
    for i, row in enumerate(rows):
        grid.carve_horizontal(row, 0, ncols - 1)
        if i + 1 < len(rows):
            connector = east_col if i % 2 == 0 else west_col
            grid.carve_vertical(connector, row, rows[i + 1])
    grid.add_port(PortKind.INLET, Side.WEST, rows[0])
    exit_side = Side.EAST if (len(rows) - 1) % 2 == 0 else Side.WEST
    grid.add_port(PortKind.OUTLET, exit_side, rows[-1])
    return apply_direction(grid, direction)


def ladder_network(
    nrows: int,
    ncols: int,
    direction: int = 0,
    pitch: int = 2,
    cell_width: float = CELL_WIDTH,
) -> ChannelGrid:
    """Straight channels plus full-height distribution manifolds.

    Vertical manifolds near the west and east edges tie all channels
    together, evening out per-channel flow when channel patterns vary.
    """
    if pitch < 2 or pitch % 2 != 0:
        raise GeometryError(f"pitch must be even and >= 2, got {pitch}")
    grid = empty_grid(nrows, ncols, cell_width)
    rows = channel_tracks(nrows)[:: pitch // 2]
    for row in rows:
        grid.carve_horizontal(row, 0, ncols - 1)
    grid.carve_vertical(0, rows[0], rows[-1])
    grid.carve_vertical(_even_boundary_col(ncols, Side.EAST), rows[0], rows[-1])
    grid.add_port_span(PortKind.INLET, Side.WEST, 0, nrows)
    grid.add_port_span(PortKind.OUTLET, Side.EAST, 0, nrows)
    return apply_direction(grid, direction)


def variable_pitch_network(
    nrows: int,
    ncols: int,
    direction: int = 0,
    dense_fraction: float = 0.5,
    cell_width: float = CELL_WIDTH,
) -> ChannelGrid:
    """Straight channels with a denser center band.

    The middle ``dense_fraction`` of the chip gets pitch-2 channels and the
    outer bands pitch-4, concentrating cooling where hotspots usually sit --
    one of the compensation ideas (factor 3 of Section 3) in manual form.
    """
    if not 0.0 < dense_fraction <= 1.0:
        raise GeometryError(
            f"dense_fraction must be in (0, 1], got {dense_fraction}"
        )
    grid = empty_grid(nrows, ncols, cell_width)
    tracks = channel_tracks(nrows)
    band = int(len(tracks) * dense_fraction / 2)
    center = len(tracks) // 2
    for i, row in enumerate(tracks):
        dense = abs(i - center) <= band
        if dense or i % 2 == 0:
            grid.carve_horizontal(row, 0, ncols - 1)
    grid.add_port_span(PortKind.INLET, Side.WEST, 0, nrows)
    grid.add_port_span(PortKind.OUTLET, Side.EAST, 0, nrows)
    return apply_direction(grid, direction)


def coiled_network(
    nrows: int,
    ncols: int,
    direction: int = 0,
    pitch: int = 4,
    cell_width: float = CELL_WIDTH,
) -> ChannelGrid:
    """Paired serpentines ("coils") meeting in the middle.

    The upper coil enters at the top-west corner and serpentines downward;
    the lower coil enters at the bottom-west corner and serpentines upward.
    Both exit on adjacent middle rows of the east side, joined into one
    continuous outlet opening.  Interior runs stay off the boundaries so the
    one-continuous-opening rule holds on every side.
    """
    if pitch < 2 or pitch % 2 != 0:
        raise GeometryError(f"pitch must be even and >= 2, got {pitch}")
    if nrows < 8 or ncols < 8:
        raise GeometryError(
            f"coiled network needs at least an 8x8 grid, got {nrows}x{ncols}"
        )
    grid = empty_grid(nrows, ncols, cell_width)
    tracks = channel_tracks(nrows)
    mid = len(tracks) // 2
    upper = tracks[:mid][:: pitch // 2]
    lower = tracks[mid:][:: pitch // 2][::-1]
    west_col = 2
    east_col = _even_boundary_col(ncols, Side.EAST) - 2
    exit_rows = []
    for half in (upper, lower):
        if not half:
            continue
        for i, row in enumerate(half):
            first = i == 0
            last = i == len(half) - 1
            # Interior runs stay between the connector columns; the entry run
            # reaches the west edge, the exit run reaches the east edge.
            col0 = 0 if first else west_col
            col1 = ncols - 1 if last else east_col
            grid.carve_horizontal(row, col0, col1)
            if not last:
                connector = east_col if i % 2 == 0 else west_col
                grid.carve_vertical(connector, row, half[i + 1])
        exit_rows.append(half[-1])
    grid.add_port(PortKind.INLET, Side.WEST, upper[0])
    if lower:
        grid.add_port(PortKind.INLET, Side.WEST, lower[0])
    # Join the two exits into one continuous outlet opening.
    lo, hi = min(exit_rows), max(exit_rows)
    grid.carve_vertical(ncols - 1 if (ncols - 1) % 2 == 0 else ncols - 2, lo, hi)
    if (ncols - 1) % 2 != 0:
        # The boundary column hosts TSVs on odd rows; expose only even rows.
        for row in range(lo, hi + 1, 2):
            grid.set_liquid(row, ncols - 1)
    grid.add_port_span(PortKind.OUTLET, Side.EAST, lo, hi + 1)
    return apply_direction(grid, direction)


def _even_boundary_col(ncols: int, side: Side) -> int:
    """The even column nearest a vertical boundary (TSV-free connector)."""
    if side is Side.WEST:
        return 0
    last = ncols - 1
    return last if last % 2 == 0 else last - 1
