"""Geometry substrate: basic-cell grids, layer stacks, design rules.

The channel layer of a liquid-cooled 3D IC is discretized into *basic cells*
(Section 2.1 of the paper).  :class:`~repro.geometry.grid.ChannelGrid` holds
the solid/liquid assignment, the TSV reservation mask and the inlet/outlet
ports of one channel layer.  :class:`~repro.geometry.stack.Stack` composes
channel layers with solid layers (bulk silicon, active source layers) into the
full 3D stack the thermal models simulate.
"""

from .grid import CellKind, ChannelGrid, Port, PortKind, Side
from .layers import ChannelLayer, Layer, SolidLayer, SourceLayer
from .region import Rect
from .stack import Stack, build_contest_stack
from .design_rules import DesignRules, check_design_rules

__all__ = [
    "CellKind",
    "ChannelGrid",
    "ChannelLayer",
    "DesignRules",
    "Layer",
    "Port",
    "PortKind",
    "Rect",
    "Side",
    "SolidLayer",
    "SourceLayer",
    "Stack",
    "build_contest_stack",
    "check_design_rules",
]
