"""Design rule checking for cooling networks (Section 3 of the paper).

The paper constrains legal cooling networks with three rules, plus benchmark-
specific extras:

1. TSV positions are reserved (alternating basic cells in both dimensions)
   and can never be liquid.
2. Inlets and outlets occur only at the edges of the channel layer.
3. To keep packaging simple, each side carries at most one *continuous*
   inlet and at most one continuous outlet (no interleaving of inlet and
   outlet surfaces along a side).
4. (case 3) Restricted areas must stay solid.
5. (case 4) All channel layers share identical inlet/outlet positions.

This module also checks well-posedness of the flow problem: every liquid cell
must be reachable from an inlet and must reach an outlet, otherwise the
coolant in it is stagnant and the network is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np
from scipy import ndimage

from ..errors import DesignRuleError
from .grid import ChannelGrid, PortKind, Side
from .stack import Stack


@dataclass
class DesignRules:
    """Configuration of which rules to enforce.

    Attributes:
        require_ports: Reject networks without at least one inlet and outlet.
        forbid_stagnant_liquid: Reject liquid cells unreachable from ports.
        single_span_per_side: Enforce rule 3 (one continuous inlet and one
            continuous outlet per side, non-interleaved).
        matched_ports_across_layers: Enforce the case-4 rule when checking a
            stack.
    """

    require_ports: bool = True
    forbid_stagnant_liquid: bool = True
    single_span_per_side: bool = True
    matched_ports_across_layers: bool = False


@dataclass
class RuleCheckResult:
    """Outcome of a design-rule check."""

    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no rule was violated."""
        return not self.violations

    def raise_if_failed(self) -> None:
        """Raise :class:`~repro.errors.DesignRuleError` on violations."""
        if self.violations:
            raise DesignRuleError(
                f"{len(self.violations)} design rule violation(s): "
                + "; ".join(self.violations),
                violations=self.violations,
            )


def check_design_rules(
    target: "ChannelGrid | Stack",
    rules: Optional[DesignRules] = None,
) -> RuleCheckResult:
    """Check a channel grid, or every channel layer of a stack.

    Returns a :class:`RuleCheckResult`; call ``raise_if_failed()`` to turn
    violations into a :class:`~repro.errors.DesignRuleError`.
    """
    rules = rules or DesignRules()
    result = RuleCheckResult()
    if isinstance(target, Stack):
        channel_layers = target.channel_layers()
        for layer in channel_layers:
            _check_grid(layer.grid, rules, result, prefix=f"{layer.name}: ")
        if rules.matched_ports_across_layers and len(channel_layers) > 1:
            _check_matched_ports(channel_layers, result)
    else:
        _check_grid(target, rules, result, prefix="")
    return result


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------


def _check_grid(
    grid: ChannelGrid, rules: DesignRules, result: RuleCheckResult, prefix: str
) -> None:
    _check_tsv(grid, result, prefix)
    _check_restricted(grid, result, prefix)
    _check_ports_on_liquid(grid, result, prefix)
    if rules.require_ports:
        _check_has_ports(grid, result, prefix)
    if rules.single_span_per_side:
        _check_spans(grid, result, prefix)
    if rules.forbid_stagnant_liquid and grid.liquid_count:
        _check_connectivity(grid, result, prefix)


def _check_tsv(grid: ChannelGrid, result: RuleCheckResult, prefix: str) -> None:
    bad = grid.liquid & grid.tsv_mask
    if bad.any():
        rows, cols = np.nonzero(bad)
        result.violations.append(
            f"{prefix}{len(rows)} liquid cell(s) on TSV positions, "
            f"first at ({rows[0]}, {cols[0]})"
        )


def _check_restricted(grid: ChannelGrid, result: RuleCheckResult, prefix: str) -> None:
    bad = grid.liquid & grid.restricted_mask
    if bad.any():
        rows, cols = np.nonzero(bad)
        result.violations.append(
            f"{prefix}{len(rows)} liquid cell(s) inside restricted areas, "
            f"first at ({rows[0]}, {cols[0]})"
        )


def _check_ports_on_liquid(
    grid: ChannelGrid, result: RuleCheckResult, prefix: str
) -> None:
    for port in grid.ports:
        row, col = port.cell(grid.nrows, grid.ncols)
        if not grid.liquid[row, col]:
            result.violations.append(
                f"{prefix}{port.kind.value} at {port.side.value}[{port.index}] "
                f"attached to solid cell ({row}, {col})"
            )


def _check_has_ports(grid: ChannelGrid, result: RuleCheckResult, prefix: str) -> None:
    if not grid.inlets():
        result.violations.append(f"{prefix}network has no inlet")
    if not grid.outlets():
        result.violations.append(f"{prefix}network has no outlet")


def _check_spans(grid: ChannelGrid, result: RuleCheckResult, prefix: str) -> None:
    for side in Side:
        spans = {}
        for kind in PortKind:
            indices = sorted(
                p.index for p in grid.ports if p.side is side and p.kind is kind
            )
            if not indices:
                continue
            lo, hi = indices[0], indices[-1]
            spans[kind] = (lo, hi)
            # Inside the span every liquid boundary cell must carry a port of
            # this kind -- a gap would mean the "continuous" opening is
            # interrupted or interleaved with the other kind.
            expected = []
            for index in range(lo, hi + 1):
                row, col = grid.boundary_cell(side, index)
                if grid.liquid[row, col]:
                    expected.append(index)
            missing = sorted(set(expected) - set(indices))
            if missing:
                result.violations.append(
                    f"{prefix}{kind.value} span on side {side.value} "
                    f"[{lo}, {hi}] skips liquid boundary cells {missing[:5]}"
                    f"{'...' if len(missing) > 5 else ''}"
                )
        if len(spans) == 2:
            (ilo, ihi) = spans[PortKind.INLET]
            (olo, ohi) = spans[PortKind.OUTLET]
            if ilo <= ohi and olo <= ihi:
                result.violations.append(
                    f"{prefix}inlet span [{ilo}, {ihi}] and outlet span "
                    f"[{olo}, {ohi}] overlap on side {side.value}"
                )


def _check_connectivity(grid: ChannelGrid, result: RuleCheckResult, prefix: str) -> None:
    labels, n_components = ndimage.label(grid.liquid)
    inlet_components = {
        labels[r, c] for r, c in grid.port_cells(PortKind.INLET)
    }
    outlet_components = {
        labels[r, c] for r, c in grid.port_cells(PortKind.OUTLET)
    }
    for component in range(1, n_components + 1):
        has_in = component in inlet_components
        has_out = component in outlet_components
        if has_in and has_out:
            continue
        size = int((labels == component).sum())
        rows, cols = np.nonzero(labels == component)
        what = (
            "no inlet or outlet"
            if not (has_in or has_out)
            else ("no outlet" if has_in else "no inlet")
        )
        result.violations.append(
            f"{prefix}stagnant liquid region of {size} cell(s) at "
            f"({rows[0]}, {cols[0]}): {what}"
        )


def _check_matched_ports(channel_layers: Sequence, result: RuleCheckResult) -> None:
    reference = {(p.kind, p.side, p.index) for p in channel_layers[0].grid.ports}
    for layer in channel_layers[1:]:
        ports = {(p.kind, p.side, p.index) for p in layer.grid.ports}
        if ports != reference:
            extra = len(ports - reference)
            missing = len(reference - ports)
            result.violations.append(
                f"{layer.name}: ports do not match {channel_layers[0].name} "
                f"({extra} extra, {missing} missing)"
            )
