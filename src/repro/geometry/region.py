"""Axis-aligned rectangular regions on the basic-cell grid.

Used for restricted areas (benchmark case 3 forbids microchannels inside a
region) and for defining hotspots in synthesized power maps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError


@dataclass(frozen=True)
class Rect:
    """A half-open rectangle ``[row0, row1) x [col0, col1)`` of basic cells."""

    row0: int
    col0: int
    row1: int
    col1: int

    def __post_init__(self) -> None:
        if self.row1 <= self.row0 or self.col1 <= self.col0:
            raise GeometryError(
                f"empty rectangle: rows [{self.row0}, {self.row1}), "
                f"cols [{self.col0}, {self.col1})"
            )
        if min(self.row0, self.col0) < 0:
            raise GeometryError("rectangle extends to negative indices")

    @property
    def nrows(self) -> int:
        """Height in basic cells."""
        return self.row1 - self.row0

    @property
    def ncols(self) -> int:
        """Width in basic cells."""
        return self.col1 - self.col0

    @property
    def area_cells(self) -> int:
        """Number of basic cells covered."""
        return self.nrows * self.ncols

    def contains(self, row: int, col: int) -> bool:
        """Whether the basic cell ``(row, col)`` lies inside the rectangle."""
        return self.row0 <= row < self.row1 and self.col0 <= col < self.col1

    def intersects(self, other: "Rect") -> bool:
        """Whether two rectangles share at least one basic cell."""
        return (
            self.row0 < other.row1
            and other.row0 < self.row1
            and self.col0 < other.col1
            and other.col0 < self.col1
        )

    def clipped(self, nrows: int, ncols: int) -> "Rect":
        """Return this rectangle clipped to an ``nrows x ncols`` grid."""
        return Rect(
            max(self.row0, 0),
            max(self.col0, 0),
            min(self.row1, nrows),
            min(self.col1, ncols),
        )

    def mask(self, nrows: int, ncols: int) -> np.ndarray:
        """Boolean mask of shape ``(nrows, ncols)``, True inside the rect."""
        out = np.zeros((nrows, ncols), dtype=bool)
        clip = self.clipped(nrows, ncols)
        out[clip.row0 : clip.row1, clip.col0 : clip.col1] = True
        return out
