"""Layer types composing a 3D IC stack.

A stack is an ordered sequence (bottom to top) of layers sharing one basic-
cell grid footprint:

* :class:`SolidLayer` -- a homogeneous slab (bulk silicon, TIM, ...).
* :class:`SourceLayer` -- a solid layer that dissipates power according to a
  per-cell power map (the active device layer of a die).
* :class:`ChannelLayer` -- a microchannel layer whose solid/liquid pattern is
  a :class:`~repro.geometry.grid.ChannelGrid`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import GeometryError
from ..materials import Solid
from .grid import ChannelGrid


class Layer:
    """Base class for all stack layers.

    Args:
        name: Unique identifier inside the stack.
        thickness: Layer thickness in meters.
    """

    def __init__(self, name: str, thickness: float):
        if thickness <= 0:
            raise GeometryError(
                f"layer {name!r}: thickness must be positive, got {thickness}"
            )
        self.name = name
        self.thickness = float(thickness)

    @property
    def is_channel(self) -> bool:
        """Whether this layer is a microchannel layer."""
        return isinstance(self, ChannelLayer)

    @property
    def is_source(self) -> bool:
        """Whether this layer dissipates power."""
        return isinstance(self, SourceLayer)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, t={self.thickness:g} m)"


class SolidLayer(Layer):
    """A homogeneous solid slab."""

    def __init__(self, name: str, material: Solid, thickness: float):
        super().__init__(name, thickness)
        self.material = material


class SourceLayer(SolidLayer):
    """A solid layer with heat dissipation.

    Args:
        power_map: Array of shape (nrows, ncols) with the power dissipated in
            each basic-cell column of this layer, in watts.  Must be
            non-negative.
    """

    def __init__(
        self,
        name: str,
        material: Solid,
        thickness: float,
        power_map: np.ndarray,
    ):
        super().__init__(name, material, thickness)
        power = np.asarray(power_map, dtype=float)
        if power.ndim != 2:
            raise GeometryError(
                f"source layer {name!r}: power map must be 2D, got "
                f"{power.ndim}D"
            )
        if (power < 0).any():
            raise GeometryError(
                f"source layer {name!r}: power map has negative entries"
            )
        self.power_map = power

    @property
    def total_power(self) -> float:
        """Total dissipated power, in watts."""
        return float(self.power_map.sum())


class ChannelLayer(Layer):
    """A microchannel layer.

    The channel walls are made of ``wall_material`` (typically silicon); the
    liquid pattern, TSV reservations and ports live in ``grid``.  The layer
    thickness equals the channel height ``h_c``.
    """

    def __init__(
        self,
        name: str,
        grid: ChannelGrid,
        channel_height: float,
        wall_material: Solid,
    ):
        super().__init__(name, channel_height)
        self.grid = grid
        self.wall_material = wall_material

    @property
    def channel_height(self) -> float:
        """``h_c``: the channel layer thickness, in meters."""
        return self.thickness

    def with_grid(self, grid: ChannelGrid, name: Optional[str] = None) -> "ChannelLayer":
        """A copy of this layer with a different channel pattern."""
        return ChannelLayer(
            name if name is not None else self.name,
            grid,
            self.channel_height,
            self.wall_material,
        )
