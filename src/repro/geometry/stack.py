"""The 3D IC stack: an ordered pile of layers over one cell grid.

:class:`Stack` validates that all layers share one footprint and provides the
queries the flow and thermal solvers need (channel layers, source layers,
total power).  :func:`build_contest_stack` assembles the ICCAD-2015-style
stacks the paper's benchmarks use: per die, a source layer, bulk silicon, and
a microchannel layer above it (interlayer cooling with a cooling layer on
every tier).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..constants import (
    DIE_BULK_THICKNESS,
    SOURCE_LAYER_THICKNESS,
)
from ..errors import GeometryError
from ..materials import BEOL, SILICON, Solid
from .grid import ChannelGrid
from .layers import ChannelLayer, Layer, SolidLayer, SourceLayer


class Stack:
    """An ordered (bottom to top) sequence of layers.

    Args:
        layers: Layers from bottom to top.
        nrows: Footprint rows (basic cells).
        ncols: Footprint columns (basic cells).
        cell_width: Basic-cell edge length in meters.
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        nrows: int,
        ncols: int,
        cell_width: float,
    ):
        if not layers:
            raise GeometryError("a stack needs at least one layer")
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise GeometryError(f"duplicate layer names in stack: {names}")
        for layer in layers:
            if isinstance(layer, ChannelLayer):
                if layer.grid.shape != (nrows, ncols):
                    raise GeometryError(
                        f"channel layer {layer.name!r} grid {layer.grid.shape} "
                        f"does not match stack footprint ({nrows}, {ncols})"
                    )
                if layer.grid.cell_width != cell_width:
                    raise GeometryError(
                        f"channel layer {layer.name!r} cell width "
                        f"{layer.grid.cell_width} != stack cell width {cell_width}"
                    )
            if isinstance(layer, SourceLayer):
                if layer.power_map.shape != (nrows, ncols):
                    raise GeometryError(
                        f"source layer {layer.name!r} power map "
                        f"{layer.power_map.shape} does not match footprint "
                        f"({nrows}, {ncols})"
                    )
        self.layers: List[Layer] = list(layers)
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.cell_width = float(cell_width)

    # ------------------------------------------------------------------

    @property
    def n_layers(self) -> int:
        """Number of stack layers."""
        return len(self.layers)

    @property
    def total_thickness(self) -> float:
        """Stack thickness in meters."""
        return sum(layer.thickness for layer in self.layers)

    @property
    def total_power(self) -> float:
        """Total heat dissipated by all source layers, in watts."""
        return sum(layer.total_power for layer in self.source_layers())

    def layer_index(self, name: str) -> int:
        """Index of the layer named ``name`` (bottom = 0)."""
        for i, layer in enumerate(self.layers):
            if layer.name == name:
                return i
        raise GeometryError(f"no layer named {name!r} in stack")

    def channel_layers(self) -> List[ChannelLayer]:
        """All channel layers, bottom to top."""
        return [l for l in self.layers if isinstance(l, ChannelLayer)]

    def source_layers(self) -> List[SourceLayer]:
        """All source layers, bottom to top."""
        return [l for l in self.layers if isinstance(l, SourceLayer)]

    def channel_layer_indices(self) -> List[int]:
        """Stack indices of the channel layers."""
        return [i for i, l in enumerate(self.layers) if isinstance(l, ChannelLayer)]

    def source_layer_indices(self) -> List[int]:
        """Stack indices of the source layers."""
        return [i for i, l in enumerate(self.layers) if isinstance(l, SourceLayer)]

    def with_channel_grids(self, grids: Sequence[ChannelGrid]) -> "Stack":
        """A copy of this stack with the channel patterns replaced.

        ``grids`` must supply one grid per channel layer, bottom to top.  This
        is the hook the topology optimizer uses: the stack geometry stays
        fixed while candidate cooling networks are swapped in.
        """
        channel_indices = self.channel_layer_indices()
        if len(grids) != len(channel_indices):
            raise GeometryError(
                f"stack has {len(channel_indices)} channel layers but "
                f"{len(grids)} grids were supplied"
            )
        new_layers = list(self.layers)
        for idx, grid in zip(channel_indices, grids):
            old = new_layers[idx]
            assert isinstance(old, ChannelLayer)
            new_layers[idx] = old.with_grid(grid)
        return Stack(new_layers, self.nrows, self.ncols, self.cell_width)

    def __repr__(self) -> str:
        kinds = ", ".join(
            f"{layer.name}({type(layer).__name__})" for layer in self.layers
        )
        return f"Stack({self.nrows}x{self.ncols}; bottom->top: {kinds})"


def build_contest_stack(
    n_dies: int,
    channel_height: float,
    power_maps: Sequence[np.ndarray],
    grid_factory: Callable[[int], ChannelGrid],
    nrows: int,
    ncols: int,
    cell_width: float,
    bulk_thickness: float = DIE_BULK_THICKNESS,
    source_thickness: float = SOURCE_LAYER_THICKNESS,
    die_material: Solid = SILICON,
    source_material: Solid = BEOL,
) -> Stack:
    """Build an interlayer-cooled stack in the ICCAD 2015 contest style.

    Per die ``d`` (bottom to top) the stack gains three layers::

        source_d   (active layer, dissipates power_maps[d])
        bulk_d     (bulk silicon)
        channel_d  (microchannel layer, pattern from grid_factory(d))

    so every die has a cooling layer directly above it.

    Args:
        n_dies: Number of dies (2 or 3 in the paper's benchmarks).
        channel_height: ``h_c`` in meters, shared by all channel layers.
        power_maps: One (nrows, ncols) power map per die, bottom to top.
        grid_factory: Called with the die index, must return that die's
            channel grid.  Use ``lambda d: grid.copy()`` to replicate one
            pattern across layers (the case-4 matched-port rule).
        nrows / ncols / cell_width: Footprint description.
    """
    if n_dies < 1:
        raise GeometryError(f"need at least one die, got {n_dies}")
    if len(power_maps) != n_dies:
        raise GeometryError(
            f"{n_dies} dies need {n_dies} power maps, got {len(power_maps)}"
        )
    layers: List[Layer] = []
    for die in range(n_dies):
        layers.append(
            SourceLayer(
                f"source_{die}", source_material, source_thickness, power_maps[die]
            )
        )
        layers.append(SolidLayer(f"bulk_{die}", die_material, bulk_thickness))
        grid = grid_factory(die)
        layers.append(
            ChannelLayer(f"channel_{die}", grid, channel_height, die_material)
        )
    return Stack(layers, nrows, ncols, cell_width)
