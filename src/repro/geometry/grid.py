"""Basic-cell grid of one channel layer.

The channel layer is divided into a 2D rectangular grid of *basic cells*
(Fig. 2 of the paper).  Each basic cell is either solid silicon or liquid
(part of a microchannel).  Some cells are reserved for TSVs and can never be
liquid; the paper's design rules place TSVs at alternating basic cells in both
dimensions.  Inlets and outlets are surfaces on the grid boundary through
which coolant enters or leaves the adjacent liquid cell.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..constants import CELL_WIDTH
from ..errors import DesignRuleError, GeometryError
from .region import Rect


class Side(enum.Enum):
    """One of the four boundary sides of the channel layer."""

    WEST = "west"
    EAST = "east"
    NORTH = "north"
    SOUTH = "south"

    @property
    def is_vertical(self) -> bool:
        """True for WEST/EAST (the side runs along rows)."""
        return self in (Side.WEST, Side.EAST)

    @property
    def outward(self) -> Tuple[int, int]:
        """Outward-pointing unit vector ``(d_row, d_col)`` of this side."""
        return _OUTWARD[self]


_OUTWARD = {
    Side.WEST: (0, -1),
    Side.EAST: (0, 1),
    Side.NORTH: (-1, 0),
    Side.SOUTH: (1, 0),
}


class PortKind(enum.Enum):
    """Whether a boundary surface injects (inlet) or drains (outlet) coolant."""

    INLET = "inlet"
    OUTLET = "outlet"


class CellKind(enum.IntEnum):
    """Material of a basic cell."""

    SOLID = 0
    LIQUID = 1


@dataclass(frozen=True)
class Port:
    """A single inlet or outlet surface.

    ``index`` identifies the boundary cell along the side: the row for
    WEST/EAST ports, the column for NORTH/SOUTH ports.
    """

    kind: PortKind
    side: Side
    index: int

    def cell(self, nrows: int, ncols: int) -> Tuple[int, int]:
        """The (row, col) of the liquid cell this port is attached to."""
        if self.side is Side.WEST:
            return (self.index, 0)
        if self.side is Side.EAST:
            return (self.index, ncols - 1)
        if self.side is Side.NORTH:
            return (0, self.index)
        return (nrows - 1, self.index)


class ChannelGrid:
    """Solid/liquid assignment and ports of one channel layer.

    Args:
        nrows: Number of basic-cell rows.
        ncols: Number of basic-cell columns.
        cell_width: Edge length of a basic cell in meters.
        tsv_mask: Boolean array of reserved cells, the string ``"alternating"``
            for the paper's default pattern (TSVs at odd rows and odd
            columns), or ``None`` for no reservations.
        restricted: Rectangles where liquid cells are forbidden (benchmark
            case 3).
    """

    def __init__(
        self,
        nrows: int,
        ncols: int,
        cell_width: float = CELL_WIDTH,
        tsv_mask: "np.ndarray | str | None" = "alternating",
        restricted: Sequence[Rect] = (),
    ):
        if nrows < 1 or ncols < 1:
            raise GeometryError(f"grid must be at least 1x1, got {nrows}x{ncols}")
        if cell_width <= 0:
            raise GeometryError(f"cell width must be positive, got {cell_width}")
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.cell_width = float(cell_width)
        self.liquid = np.zeros((self.nrows, self.ncols), dtype=bool)
        if tsv_mask is None:
            self.tsv_mask = np.zeros((self.nrows, self.ncols), dtype=bool)
        elif isinstance(tsv_mask, str):
            if tsv_mask != "alternating":
                raise GeometryError(f"unknown TSV pattern {tsv_mask!r}")
            self.tsv_mask = alternating_tsv_mask(self.nrows, self.ncols)
        else:
            mask = np.asarray(tsv_mask, dtype=bool)
            if mask.shape != (self.nrows, self.ncols):
                raise GeometryError(
                    f"TSV mask shape {mask.shape} does not match grid "
                    f"({self.nrows}, {self.ncols})"
                )
            self.tsv_mask = mask.copy()
        self.restricted = tuple(restricted)
        self._restricted_mask = np.zeros((self.nrows, self.ncols), dtype=bool)
        for rect in self.restricted:
            self._restricted_mask |= rect.mask(self.nrows, self.ncols)
        self.ports: list = []

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, cols) of the basic-cell grid."""
        return (self.nrows, self.ncols)

    @property
    def width(self) -> float:
        """Physical extent along columns, in meters."""
        return self.ncols * self.cell_width

    @property
    def height(self) -> float:
        """Physical extent along rows, in meters."""
        return self.nrows * self.cell_width

    @property
    def restricted_mask(self) -> np.ndarray:
        """Boolean mask of cells inside restricted rectangles."""
        return self._restricted_mask

    @property
    def liquid_count(self) -> int:
        """Number of liquid basic cells."""
        return int(self.liquid.sum())

    def is_liquid(self, row: int, col: int) -> bool:
        """Whether one basic cell is liquid."""
        return bool(self.liquid[row, col])

    def in_bounds(self, row: int, col: int) -> bool:
        """Whether (row, col) lies inside the grid."""
        return 0 <= row < self.nrows and 0 <= col < self.ncols

    def side_length(self, side: Side) -> int:
        """Number of boundary cells along a side."""
        return self.nrows if side.is_vertical else self.ncols

    def inlets(self) -> list:
        """All inlet ports."""
        return [p for p in self.ports if p.kind is PortKind.INLET]

    def outlets(self) -> list:
        """All outlet ports."""
        return [p for p in self.ports if p.kind is PortKind.OUTLET]

    # ------------------------------------------------------------------
    # Mutation: carving channels
    # ------------------------------------------------------------------

    def _check_carvable(self, rows: np.ndarray, cols: np.ndarray, force: bool) -> None:
        if force:
            return
        bad_tsv = self.tsv_mask[rows, cols]
        if bad_tsv.any():
            where = int(np.argmax(bad_tsv))
            raise DesignRuleError(
                f"cannot carve liquid over TSV cell "
                f"({int(rows[where])}, {int(cols[where])})"
            )
        bad_res = self._restricted_mask[rows, cols]
        if bad_res.any():
            where = int(np.argmax(bad_res))
            raise DesignRuleError(
                f"cannot carve liquid inside restricted area at "
                f"({int(rows[where])}, {int(cols[where])})"
            )

    def set_liquid(self, row: int, col: int, force: bool = False) -> None:
        """Make one basic cell liquid."""
        if not self.in_bounds(row, col):
            raise GeometryError(f"cell ({row}, {col}) outside {self.shape} grid")
        self._check_carvable(np.array([row]), np.array([col]), force)
        self.liquid[row, col] = True

    def carve_horizontal(
        self, row: int, col0: int, col1: int, force: bool = False
    ) -> None:
        """Carve a horizontal channel segment on ``row``, cols ``[col0, col1]``."""
        lo, hi = sorted((col0, col1))
        if not (self.in_bounds(row, lo) and self.in_bounds(row, hi)):
            raise GeometryError(
                f"segment row={row} cols=[{lo}, {hi}] outside {self.shape} grid"
            )
        cols = np.arange(lo, hi + 1)
        rows = np.full_like(cols, row)
        self._check_carvable(rows, cols, force)
        self.liquid[row, lo : hi + 1] = True

    def carve_vertical(
        self, col: int, row0: int, row1: int, force: bool = False
    ) -> None:
        """Carve a vertical channel segment on ``col``, rows ``[row0, row1]``."""
        lo, hi = sorted((row0, row1))
        if not (self.in_bounds(lo, col) and self.in_bounds(hi, col)):
            raise GeometryError(
                f"segment col={col} rows=[{lo}, {hi}] outside {self.shape} grid"
            )
        rows = np.arange(lo, hi + 1)
        cols = np.full_like(rows, col)
        self._check_carvable(rows, cols, force)
        self.liquid[lo : hi + 1, col] = True

    def carve_rect(self, rect: Rect, force: bool = False) -> None:
        """Carve every cell of a rectangle to liquid."""
        clip = rect.clipped(self.nrows, self.ncols)
        mask = clip.mask(self.nrows, self.ncols)
        rows, cols = np.nonzero(mask)
        self._check_carvable(rows, cols, force)
        self.liquid |= mask

    def fill_solid(self, rect: Optional[Rect] = None) -> None:
        """Reset cells to solid (whole grid, or just one rectangle)."""
        if rect is None:
            self.liquid[:, :] = False
        else:
            clip = rect.clipped(self.nrows, self.ncols)
            self.liquid[clip.row0 : clip.row1, clip.col0 : clip.col1] = False

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------

    def boundary_cell(self, side: Side, index: int) -> Tuple[int, int]:
        """The (row, col) of the boundary cell at ``index`` along ``side``."""
        if not 0 <= index < self.side_length(side):
            raise GeometryError(
                f"index {index} outside side {side.value} of length "
                f"{self.side_length(side)}"
            )
        return Port(PortKind.INLET, side, index).cell(self.nrows, self.ncols)

    def add_port(self, kind: PortKind, side: Side, index: int) -> Port:
        """Attach a single inlet/outlet surface to a liquid boundary cell."""
        row, col = self.boundary_cell(side, index)
        if not self.liquid[row, col]:
            raise DesignRuleError(
                f"{kind.value} at {side.value}[{index}] touches a solid cell "
                f"({row}, {col}); ports must attach to liquid cells"
            )
        port = Port(kind, side, index)
        if port in self.ports:
            return port
        opposite = Port(
            PortKind.OUTLET if kind is PortKind.INLET else PortKind.INLET,
            side,
            index,
        )
        if opposite in self.ports:
            raise DesignRuleError(
                f"cell {side.value}[{index}] already has a "
                f"{opposite.kind.value}; a surface cannot be both"
            )
        self.ports.append(port)
        return port

    def add_port_span(
        self, kind: PortKind, side: Side, start: int, stop: int
    ) -> list:
        """Attach ports to every *liquid* boundary cell in ``[start, stop)``.

        Solid cells inside the span are skipped: the physical package opening
        is continuous, but coolant only passes where the boundary cell is
        liquid.  Returns the ports added.
        """
        if stop <= start:
            raise GeometryError(f"empty port span [{start}, {stop})")
        added = []
        for index in range(start, stop):
            row, col = self.boundary_cell(side, index)
            if self.liquid[row, col]:
                added.append(self.add_port(kind, side, index))
        if not added:
            raise DesignRuleError(
                f"{kind.value} span {side.value}[{start}:{stop}] touches no "
                "liquid cells"
            )
        return added

    def clear_ports(self) -> None:
        """Remove every attached port."""
        self.ports = []

    def port_cells(self, kind: Optional[PortKind] = None) -> list:
        """(row, col) cells with an attached port, optionally filtered by kind."""
        return [
            p.cell(self.nrows, self.ncols)
            for p in self.ports
            if kind is None or p.kind is kind
        ]

    # ------------------------------------------------------------------
    # Iteration helpers used by the flow / thermal solvers
    # ------------------------------------------------------------------

    def liquid_cells(self) -> Iterator[Tuple[int, int]]:
        """Yield (row, col) of every liquid cell in row-major order."""
        rows, cols = np.nonzero(self.liquid)
        return zip(rows.tolist(), cols.tolist())

    def liquid_index_map(self) -> dict:
        """Map (row, col) -> dense index for every liquid cell."""
        return {cell: i for i, cell in enumerate(self.liquid_cells())}

    def liquid_adjacent_pairs(self) -> Iterator[Tuple[Tuple[int, int], Tuple[int, int]]]:
        """Yield each pair of edge-adjacent liquid cells exactly once.

        Pairs are emitted as ((r, c), (r, c+1)) and ((r, c), (r+1, c)).
        """
        liq = self.liquid
        horis = liq[:, :-1] & liq[:, 1:]
        for r, c in zip(*np.nonzero(horis)):
            yield (int(r), int(c)), (int(r), int(c) + 1)
        verts = liq[:-1, :] & liq[1:, :]
        for r, c in zip(*np.nonzero(verts)):
            yield (int(r), int(c)), (int(r) + 1, int(c))

    # ------------------------------------------------------------------
    # Copies and symmetry transforms
    # ------------------------------------------------------------------

    def copy(self) -> "ChannelGrid":
        """A deep copy (pattern, masks and ports)."""
        out = ChannelGrid(
            self.nrows,
            self.ncols,
            self.cell_width,
            tsv_mask=self.tsv_mask,
            restricted=self.restricted,
        )
        out.liquid = self.liquid.copy()
        out.ports = list(self.ports)
        return out

    def transformed(self, rotations: int = 0, flip: bool = False) -> "ChannelGrid":
        """Return a copy rotated by ``rotations * 90`` degrees CCW, then
        optionally flipped upside down.

        The eight (rotations, flip) combinations realize the eight global
        flow directions of Fig. 8(a) when applied to a canonical west-to-east
        design.
        """
        rotations %= 4

        def xform_arr(a: np.ndarray) -> np.ndarray:
            out = np.rot90(a, rotations)
            if flip:
                out = np.flipud(out)
            return out

        new_liquid = xform_arr(self.liquid)
        nrows, ncols = new_liquid.shape
        out = ChannelGrid(
            nrows,
            ncols,
            self.cell_width,
            tsv_mask=xform_arr(self.tsv_mask),
            restricted=(),  # restricted rects re-derived below
        )
        out._restricted_mask = xform_arr(self._restricted_mask)
        out.restricted = ()
        out.liquid = new_liquid.copy()
        for port in self.ports:
            cell = port.cell(self.nrows, self.ncols)
            direction = port.side.outward
            new_cell, new_dir = _transform_cell(
                cell, direction, self.nrows, self.ncols, rotations, flip
            )
            out.ports.append(
                Port(port.kind, _side_from_outward(new_dir), _side_index(new_cell, new_dir))
            )
        return out

    def __repr__(self) -> str:
        return (
            f"ChannelGrid({self.nrows}x{self.ncols}, "
            f"{self.liquid_count} liquid, {len(self.inlets())} inlets, "
            f"{len(self.outlets())} outlets)"
        )


def alternating_tsv_mask(nrows: int, ncols: int) -> np.ndarray:
    """TSVs at alternating basic cells in both dimensions (odd row, odd col)."""
    mask = np.zeros((nrows, ncols), dtype=bool)
    mask[1::2, 1::2] = True
    return mask


def _transform_cell(
    cell: Tuple[int, int],
    direction: Tuple[int, int],
    nrows: int,
    ncols: int,
    rotations: int,
    flip: bool,
) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """Apply the same map as numpy rot90/flipud to a cell and a direction."""
    r, c = cell
    dr, dc = direction
    nr, nc = nrows, ncols
    for _ in range(rotations):
        # np.rot90 CCW: new[r', c'] = old[c', nc - 1 - r']  =>
        # old (r, c) -> new (nc - 1 - c, r)
        r, c = nc - 1 - c, r
        dr, dc = -dc, dr
        nr, nc = nc, nr
    if flip:
        r = nr - 1 - r
        dr = -dr
    return (r, c), (dr, dc)


def _side_from_outward(direction: Tuple[int, int]) -> Side:
    for side, vec in _OUTWARD.items():
        if vec == direction:
            return side
    raise GeometryError(f"no side with outward vector {direction}")


def _side_index(cell: Tuple[int, int], direction: Tuple[int, int]) -> int:
    row, col = cell
    return row if direction[0] == 0 else col
