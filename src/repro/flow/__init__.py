"""Laminar flow network solver for microchannel cooling networks.

Implements Section 2.1 of the paper: fully developed laminar flow between
neighboring liquid cells obeys ``Q_ij = g_fluid (P_i - P_j)`` (Eq. 1) with the
Hagen-Poiseuille conductance, volume conservation holds at every liquid cell
(Eq. 2), and the resulting linear system ``G P = Q_in`` (Eq. 3) is solved for
all cell pressures.  Local flow rates, the system flow rate ``Q_sys``, the
system fluid resistance ``R_sys`` and the pumping power
``W_pump = P_sys^2 / R_sys`` follow.
"""

from .conductance import (
    cell_conductance,
    channel_cross_section,
    edge_conductance,
    hydraulic_diameter,
)
from .network import FlowField, FlowSolution, solve_flow
from .metrics import pumping_power, system_flow_rate, system_resistance

__all__ = [
    "FlowField",
    "FlowSolution",
    "cell_conductance",
    "channel_cross_section",
    "edge_conductance",
    "hydraulic_diameter",
    "pumping_power",
    "solve_flow",
    "system_flow_rate",
    "system_resistance",
]
