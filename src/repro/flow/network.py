"""Pressure and flow-rate solution of a cooling network.

The solver exploits linearity: pressures and flow rates scale proportionally
with the system pressure drop ``P_sys`` (all conductances are constants).  A
:class:`FlowField` therefore solves the network once at unit pressure and
produces the :class:`FlowSolution` for any ``P_sys`` by scaling -- this makes
the repeated pressure probes of the optimization loops (Algorithms 2/3)
essentially free on the flow side.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.sparse import csc_matrix

from .. import linalg, profiling, telemetry
from ..constants import EDGE_CONDUCTANCE_FACTOR
from ..errors import FlowError, LinalgError
from ..faults import SITE_FLOW_MATRIX, SITE_FLOW_PRESSURES, corrupt
from ..geometry.grid import ChannelGrid, PortKind
from ..materials import Coolant
from .conductance import cell_conductance, edge_conductance


@dataclass
class FlowSolution:
    """Flow state of a network at one system pressure drop.

    All arrays are indexed by the dense liquid-cell index of
    ``grid.liquid_index_map()``.

    Attributes:
        p_sys: System pressure drop in Pa (outlet pressure is 0).
        pressures: Pressure at every liquid cell, shape (n,).
        edge_cells: Index pairs (i, j) of adjacent liquid cells, shape (e, 2).
        edge_flows: Signed flow from cell i to cell j on each edge, m^3/s.
        inlet_flows: Flow entering each cell from attached inlets (>= 0).
        outlet_flows: Flow leaving each cell through attached outlets (>= 0).
        q_sys: Total system flow rate, m^3/s.
    """

    p_sys: float
    pressures: np.ndarray
    edge_cells: np.ndarray
    edge_flows: np.ndarray
    inlet_flows: np.ndarray
    outlet_flows: np.ndarray
    q_sys: float

    @property
    def n_cells(self) -> int:
        """Number of liquid cells in the solution."""
        return self.pressures.shape[0]

    @property
    def r_sys(self) -> float:
        """System fluid resistance ``P_sys / Q_sys`` in Pa s / m^3."""
        if self.q_sys <= 0:
            raise FlowError("system flow rate is zero; no resistance defined")
        return self.p_sys / self.q_sys

    @property
    def w_pump(self) -> float:
        """Pumping power ``P_sys * Q_sys`` in watts (efficiency term dropped)."""
        return self.p_sys * self.q_sys

    def conservation_residual(self) -> np.ndarray:
        """Net volume flux into each cell; ~0 everywhere at a valid solution."""
        residual = self.inlet_flows - self.outlet_flows
        np.subtract.at(residual, self.edge_cells[:, 0], self.edge_flows)
        np.add.at(residual, self.edge_cells[:, 1], self.edge_flows)
        return residual


#: Fields of a solved unit-pressure system shared through the topology cache.
_UNIT_FIELDS = (
    "edge_cells",
    "inlet_idx",
    "outlet_idx",
    "g_cell",
    "g_edge",
    "_unit_pressures",
    "_unit_edge_flows",
    "_unit_inlet_flows",
    "_unit_outlet_flows",
    "_unit_q_sys",
)

_unit_cache_lock = threading.Lock()
_unit_cache: "OrderedDict[tuple, dict]" = OrderedDict()
_unit_cache_size = 64


def set_unit_cache_size(size: int) -> int:
    """Resize the topology-keyed unit-solution cache; 0 disables it.

    Returns the previous size.  Shrinking evicts oldest entries immediately.
    """
    global _unit_cache_size
    with _unit_cache_lock:
        previous = _unit_cache_size
        _unit_cache_size = max(int(size), 0)
        while len(_unit_cache) > _unit_cache_size:
            _unit_cache.popitem(last=False)
    return previous


def clear_unit_cache() -> None:
    """Drop every cached unit solution (mainly for tests and benchmarks)."""
    with _unit_cache_lock:
        _unit_cache.clear()


class FlowField:
    """Pressure/flow solver for one channel grid, reusable across pressures.

    The assembled sparse system and its unit-pressure solution are memoized
    in a module-level cache keyed by the network *topology* (liquid mask,
    ports, geometry, coolant, edge factor): building a second ``FlowField``
    for an identical network -- e.g. the matched-ports convention replicating
    one grid across every channel layer, or the SA loop revisiting a
    candidate -- skips assembly and factorization entirely.  Cached arrays
    are marked read-only because they are shared between instances.

    Args:
        grid: The cooling network.
        channel_height: ``h_c`` in meters.
        coolant: Working fluid.
        edge_factor: Scale of the inlet/outlet conductance relative to a
            cell-to-cell conductance.
    """

    def __init__(
        self,
        grid: ChannelGrid,
        channel_height: float,
        coolant: Coolant,
        edge_factor: float = EDGE_CONDUCTANCE_FACTOR,
    ) -> None:
        if channel_height <= 0:
            raise FlowError(
                f"channel height must be positive, got {channel_height}"
            )
        self.grid = grid
        self.channel_height = float(channel_height)
        self.coolant = coolant
        self.edge_factor = float(edge_factor)
        self.index_of = grid.liquid_index_map()
        self.n = len(self.index_of)
        if self.n == 0:
            raise FlowError("network has no liquid cells")
        if not grid.inlets():
            raise FlowError("network has no inlet; pressure problem is singular")
        if not grid.outlets():
            raise FlowError("network has no outlet; pressure problem is singular")
        key = self._topology_key()
        with _unit_cache_lock:
            cached = _unit_cache.get(key)
            if cached is not None:
                _unit_cache.move_to_end(key)
        if cached is not None:
            profiling.increment("flow.unit_cache_hits")
            for name in _UNIT_FIELDS:
                setattr(self, name, cached[name])
            return
        with telemetry.span("flow.unit_solve", cells=self.n):
            with profiling.timer("flow.unit_solve"):
                self._assemble()
                self._solve_unit()
        profiling.increment("flow.unit_solves")
        entry = {name: getattr(self, name) for name in _UNIT_FIELDS}
        for value in entry.values():
            if isinstance(value, np.ndarray):
                value.setflags(write=False)
        with _unit_cache_lock:
            if _unit_cache_size > 0:
                _unit_cache[key] = entry
                while len(_unit_cache) > _unit_cache_size:
                    _unit_cache.popitem(last=False)

    def _topology_key(self) -> tuple:
        """Everything the unit solution depends on, hashable."""
        grid = self.grid
        return (
            grid.nrows,
            grid.ncols,
            grid.cell_width,
            self.channel_height,
            self.edge_factor,
            self.coolant,
            grid.liquid.tobytes(),
            tuple(sorted((p.kind.value, p.side.value, p.index) for p in grid.ports)),
        )

    # ------------------------------------------------------------------

    def _assemble(self) -> None:
        grid = self.grid
        w = grid.cell_width
        g_cell = cell_conductance(w, self.channel_height, w, self.coolant)
        g_edge = edge_conductance(
            w, self.channel_height, w, self.coolant, self.edge_factor
        )
        # Guard the assembly inputs: a degenerate channel geometry or broken
        # coolant viscosity surfaces here as a named FlowError instead of an
        # opaque singular-factorization failure downstream.
        for label, g in (("cell", g_cell), ("inlet/outlet edge", g_edge)):
            if not np.isfinite(g) or g <= 0.0:
                raise FlowError(
                    f"non-finite or non-positive {label} conductance {g!r} "
                    f"for channel (cell_width={w}, "
                    f"channel_height={self.channel_height}, "
                    f"coolant={self.coolant.name!r})"
                )
        self.g_cell = g_cell
        self.g_edge = g_edge

        pairs = [
            (self.index_of[a], self.index_of[b])
            for a, b in grid.liquid_adjacent_pairs()
        ]
        self.edge_cells = (
            np.asarray(pairs, dtype=np.int64)
            if pairs
            else np.zeros((0, 2), dtype=np.int64)
        )

        # Vectorized assembly: all off-diagonal couplings carry the same
        # -g_cell, and every diagonal entry accumulates identical g_cell
        # increments, so the scatter-add ordering cannot change the floats.
        i_idx = self.edge_cells[:, 0]
        j_idx = self.edge_cells[:, 1]
        diag = np.zeros(self.n)
        np.add.at(diag, i_idx, g_cell)
        np.add.at(diag, j_idx, g_cell)

        # Ports add a Dirichlet coupling: inlet cells see pressure P_sys,
        # outlet cells see pressure 0, both through g_edge.
        inlet_idx = [
            self.index_of[cell] for cell in grid.port_cells(PortKind.INLET)
        ]
        outlet_idx = [
            self.index_of[cell] for cell in grid.port_cells(PortKind.OUTLET)
        ]
        self.inlet_idx = np.asarray(inlet_idx, dtype=np.int64)
        self.outlet_idx = np.asarray(outlet_idx, dtype=np.int64)
        np.add.at(diag, self.inlet_idx, g_edge)
        np.add.at(diag, self.outlet_idx, g_edge)

        all_idx = np.arange(self.n, dtype=np.int64)
        off_diag = np.full(i_idx.size, -g_cell)
        rows = np.concatenate([i_idx, j_idx, all_idx])
        cols = np.concatenate([j_idx, i_idx, all_idx])
        vals = np.concatenate([off_diag, off_diag, diag])
        self._matrix = csc_matrix(
            (vals, (rows, cols)), shape=(self.n, self.n)
        )

    def _solve_unit(self) -> None:
        rhs = np.zeros(self.n)
        np.add.at(rhs, self.inlet_idx, self.g_edge)  # P_in = 1 Pa
        matrix = corrupt(SITE_FLOW_MATRIX, self._matrix)
        # The pressure system is a grounded conductance Laplacian (SPD), so
        # the registry may hand it to a Cholesky backend.  Backends promote
        # every failure shape -- singular RuntimeError, near-singular
        # MatrixRankWarning, umfpack ValueError/ArithmeticError -- to a
        # typed LinalgError, translated here to the domain FlowError.
        try:
            factor = linalg.factorize(matrix, spd=True)
            pressures = factor.solve(rhs)
        except LinalgError as exc:
            raise FlowError(
                "pressure system is singular or could not be factorized; "
                "the network likely contains liquid regions not connected "
                "to any port"
            ) from exc
        pressures = corrupt(SITE_FLOW_PRESSURES, pressures)
        if not np.all(np.isfinite(pressures)):
            raise FlowError("pressure solve produced non-finite values")
        self._unit_pressures = pressures
        i_idx = self.edge_cells[:, 0]
        j_idx = self.edge_cells[:, 1]
        self._unit_edge_flows = self.g_cell * (
            pressures[i_idx] - pressures[j_idx]
        )
        unit_inflow = np.zeros(self.n)
        np.add.at(
            unit_inflow,
            self.inlet_idx,
            self.g_edge * (1.0 - pressures[self.inlet_idx]),
        )
        unit_outflow = np.zeros(self.n)
        np.add.at(
            unit_outflow, self.outlet_idx, self.g_edge * pressures[self.outlet_idx]
        )
        self._unit_inlet_flows = unit_inflow
        self._unit_outlet_flows = unit_outflow
        self._unit_q_sys = float(unit_inflow.sum())
        if self._unit_q_sys <= 0:
            raise FlowError(
                "system flow rate is non-positive; inlets and outlets may be "
                "swapped or disconnected"
            )

    # ------------------------------------------------------------------

    @property
    def r_sys(self) -> float:
        """System fluid resistance, independent of ``P_sys``."""
        return 1.0 / self._unit_q_sys

    def q_sys(self, p_sys: float) -> float:
        """System flow rate at pressure drop ``p_sys``."""
        return self._unit_q_sys * p_sys

    def w_pump(self, p_sys: float) -> float:
        """Pumping power ``P_sys^2 / R_sys`` at pressure drop ``p_sys``."""
        return p_sys * p_sys * self._unit_q_sys

    def p_sys_for_power(self, w_pump: float) -> float:
        """Pressure drop that spends exactly ``w_pump`` (Eq. 10 inverted)."""
        if w_pump < 0:
            raise FlowError(f"pumping power must be non-negative, got {w_pump}")
        return float(np.sqrt(w_pump / self._unit_q_sys))

    def at_pressure(self, p_sys: float) -> FlowSolution:
        """Full flow solution at pressure drop ``p_sys`` (by linear scaling)."""
        if p_sys < 0:
            raise FlowError(f"system pressure must be non-negative, got {p_sys}")
        return FlowSolution(
            p_sys=float(p_sys),
            pressures=self._unit_pressures * p_sys,
            edge_cells=self.edge_cells,
            edge_flows=self._unit_edge_flows * p_sys,
            inlet_flows=self._unit_inlet_flows * p_sys,
            outlet_flows=self._unit_outlet_flows * p_sys,
            q_sys=self._unit_q_sys * p_sys,
        )


def solve_flow(
    grid: ChannelGrid,
    channel_height: float,
    coolant: Coolant,
    p_sys: float,
    edge_factor: float = EDGE_CONDUCTANCE_FACTOR,
) -> FlowSolution:
    """One-shot convenience wrapper: build a :class:`FlowField` and scale.

    Args:
        grid: Channel placement to solve.
        channel_height: Channel height ``h_c``.  [unit: m]
        coolant: The working fluid.
        p_sys: System pressure drop.  [unit: Pa]
        edge_factor: Dimensionless inlet/outlet conductance scale.  [unit: 1]
    """
    return FlowField(grid, channel_height, coolant, edge_factor).at_pressure(p_sys)
