"""Hydraulic conductance formulas for rectangular microchannels.

For fully developed laminar flow between the centers of two adjacent liquid
cells, the volumetric flow rate obeys (Eq. 1 of the paper)::

    Q_ij = g_fluid * (P_i - P_j),
    g_fluid = D_h^2 * A_c / (32 * l * mu)

with hydraulic diameter ``D_h``, cross-sectional area ``A_c``, center-to-
center distance ``l`` and coolant dynamic viscosity ``mu``.
"""

from __future__ import annotations

from ..constants import EDGE_CONDUCTANCE_FACTOR, POISEUILLE_CONSTANT
from ..errors import FlowError
from ..materials import Coolant


def hydraulic_diameter(width: float, height: float) -> float:
    """Hydraulic diameter ``D_h = 4 A_c / perimeter`` of a rectangular duct.

    For a ``width x height`` rectangle this reduces to
    ``2 w h / (w + h)``.

    Args:
        width: Channel width ``w_c``.  [unit: m]
        height: Channel height ``h_c``.  [unit: m]

    Returns:
        Hydraulic diameter.  [unit-return: m]
    """
    if width <= 0 or height <= 0:
        raise FlowError(
            f"channel dimensions must be positive, got {width} x {height}"
        )
    return 2.0 * width * height / (width + height)


def channel_cross_section(width: float, height: float) -> float:
    """Cross-sectional area ``A_c`` of a rectangular channel.

    Args:
        width: Channel width ``w_c``.  [unit: m]
        height: Channel height ``h_c``.  [unit: m]

    Returns:
        Cross-sectional area.  [unit-return: m^2]
    """
    if width <= 0 or height <= 0:
        raise FlowError(
            f"channel dimensions must be positive, got {width} x {height}"
        )
    return width * height


def cell_conductance(
    width: float,
    height: float,
    length: float,
    coolant: Coolant,
) -> float:
    """Fluid conductance between two adjacent liquid cell centers (Eq. 1).

    Args:
        width: Channel (basic cell) width ``w_c``.  [unit: m]
        height: Channel height ``h_c``.  [unit: m]
        length: Center-to-center distance ``l`` (equals ``w_c`` for
            neighboring basic cells on the square grid).  [unit: m]
        coolant: The working fluid.

    Returns:
        Conductance in m^3 / (s Pa).  [unit-return: m^3/(s Pa)]
    """
    if length <= 0:
        raise FlowError(f"distance must be positive, got {length}")
    d_h = hydraulic_diameter(width, height)
    a_c = channel_cross_section(width, height)
    return d_h * d_h * a_c / (
        POISEUILLE_CONSTANT * length * coolant.dynamic_viscosity
    )


def edge_conductance(
    width: float,
    height: float,
    length: float,
    coolant: Coolant,
    factor: float = EDGE_CONDUCTANCE_FACTOR,
) -> float:
    """Fluid conductance between a boundary cell center and an inlet/outlet.

    The paper states this conductance is smaller than a full cell-to-cell
    conductance without giving the value; we scale the cell conductance by
    ``factor`` and expose the knob for ablation.

    Args:
        width: Channel width ``w_c``.  [unit: m]
        height: Channel height ``h_c``.  [unit: m]
        length: Center-to-center distance ``l``.  [unit: m]
        coolant: The working fluid.
        factor: Dimensionless scale (default
            :data:`~repro.constants.EDGE_CONDUCTANCE_FACTOR`).  [unit: 1]

    Returns:
        Conductance.  [unit-return: m^3/(s Pa)]
    """
    if factor <= 0:
        raise FlowError(f"edge conductance factor must be positive, got {factor}")
    return factor * cell_conductance(width, height, length, coolant)
