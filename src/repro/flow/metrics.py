"""System-level hydraulic metrics (Section 3 / Eq. 10 of the paper)."""

from __future__ import annotations

from ..errors import FlowError


def system_flow_rate(p_sys: float, r_sys: float) -> float:
    """``Q_sys = P_sys / R_sys``.

    Args:
        p_sys: System pressure drop.  [unit: Pa]
        r_sys: System hydraulic resistance.  [unit: Pa s/m^3]

    Returns:
        Volumetric flow rate.  [unit-return: m^3/s]
    """
    if r_sys <= 0:
        raise FlowError(f"system resistance must be positive, got {r_sys}")
    return p_sys / r_sys


def system_resistance(p_sys: float, q_sys: float) -> float:
    """``R_sys = P_sys / Q_sys``.

    Args:
        p_sys: System pressure drop.  [unit: Pa]
        q_sys: Volumetric flow rate.  [unit: m^3/s]

    Returns:
        System hydraulic resistance.  [unit-return: Pa s/m^3]
    """
    if q_sys <= 0:
        raise FlowError(f"system flow rate must be positive, got {q_sys}")
    return p_sys / q_sys


def pumping_power(p_sys: float, r_sys: float) -> float:
    """``W_pump = P_sys^2 / R_sys`` (Eq. 10, efficiency dropped).

    Args:
        p_sys: System pressure drop.  [unit: Pa]
        r_sys: System hydraulic resistance.  [unit: Pa s/m^3]

    Returns:
        Pumping power.  [unit-return: W]
    """
    if r_sys <= 0:
        raise FlowError(f"system resistance must be positive, got {r_sys}")
    return p_sys * p_sys / r_sys


def pressure_for_power(w_pump: float, r_sys: float) -> float:
    """Invert Eq. 10: the ``P_sys`` that spends exactly ``w_pump``.

    Args:
        w_pump: Pumping power budget.  [unit: W]
        r_sys: System hydraulic resistance.  [unit: Pa s/m^3]

    Returns:
        System pressure drop.  [unit-return: Pa]
    """
    if r_sys <= 0:
        raise FlowError(f"system resistance must be positive, got {r_sys}")
    if w_pump < 0:
        raise FlowError(f"pumping power must be non-negative, got {w_pump}")
    return (w_pump * r_sys) ** 0.5
