#!/usr/bin/env python3
"""Author a custom cooling network by hand and take it through the flow.

Shows the low-level API: carve channels on the basic-cell grid, attach
inlet/outlet ports, validate the design rules, evaluate the network with
Algorithm 2, and round-trip the design through the text file format.

Run:  python examples/custom_network.py
"""

import tempfile
from pathlib import Path

from repro import check_design_rules
from repro.analysis import render_network
from repro.cooling import CoolingSystem, evaluate_problem1
from repro.geometry import PortKind, Side
from repro.iccad2015 import load_case, read_network, write_network
from repro.networks import empty_grid


def main() -> None:
    case = load_case(2, grid_size=21)
    n = case.nrows

    # Hand-craft a "double comb": a wide trunk feeding interleaved fingers.
    grid = empty_grid(n, n, case.cell_width)
    trunk_col = 0
    grid.carve_vertical(trunk_col, 0, n - 1)  # west manifold
    for i, row in enumerate(range(0, n, 2)):
        # Alternate finger lengths for uneven heat-sinking compensation.
        end = n - 1 if i % 2 == 0 else n - 5
        grid.carve_horizontal(row, trunk_col, end)
    # Every finger that reaches the east edge becomes an outlet.
    grid.add_port_span(PortKind.INLET, Side.WEST, 0, n)
    grid.add_port_span(PortKind.OUTLET, Side.EAST, 0, n)

    result = check_design_rules(grid)
    if not result.ok:
        print("Design rule violations:")
        for violation in result.violations:
            print(f"  - {violation}")
        print("\nShort fingers ending mid-chip hold stagnant coolant; "
              "extend them or drop them.")
        # Fix: extend the short fingers to the east edge too.
        for i, row in enumerate(range(0, n, 2)):
            grid.carve_horizontal(row, 0, n - 1)
        grid.clear_ports()
        grid.add_port_span(PortKind.INLET, Side.WEST, 0, n)
        grid.add_port_span(PortKind.OUTLET, Side.EAST, 0, n)
        check_design_rules(grid).raise_if_failed()
        print("Fixed: all fingers now reach the outlet side.\n")

    print(render_network(grid, max_width=120))

    # Evaluate with Algorithm 2: the lowest feasible pumping power.
    system = CoolingSystem.for_network(
        case.base_stack(), grid, case.coolant, model="2rm", tile_size=4
    )
    evaluation = evaluate_problem1(system, case.delta_t_star, case.t_max_star)
    status = "feasible" if evaluation.feasible else "INFEASIBLE"
    print(
        f"Evaluation ({status}): P_sys = {evaluation.p_sys / 1e3:.2f} kPa, "
        f"W_pump = {evaluation.w_pump * 1e3:.3f} mW, "
        f"T_max = {evaluation.t_max:.1f} K, DeltaT = {evaluation.delta_t:.2f} K"
    )

    # Persist and reload the design.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "custom_network.txt"
        write_network(grid, path)
        loaded = read_network(path)
        assert (loaded.liquid == grid.liquid).all()
        print(f"\nNetwork round-tripped through {path.name} "
              f"({path.stat().st_size} bytes).")


if __name__ == "__main__":
    main()
