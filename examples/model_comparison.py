#!/usr/bin/env python3
"""Fig. 9 in miniature: 2RM accuracy and speed-up across thermal-cell sizes.

Sweeps the fast 2RM model over thermal-cell sizes and network styles against
the 4RM reference, printing the two curves of Fig. 9: average relative error
by cell size and style (a), and solve-time speed-up by cell size (b).

Run:  python examples/model_comparison.py [grid_size]
"""

import sys
from collections import defaultdict

from repro.analysis import compare_models, format_table
from repro.analysis.model_compare import aggregate_by
from repro.iccad2015 import load_case
from repro.networks import plan_tree_bands, serpentine_network, straight_network


def main() -> None:
    grid_size = int(sys.argv[1]) if len(sys.argv) > 1 else 41
    case = load_case(1, grid_size=grid_size)
    cell_um = case.cell_width * 1e6
    networks = [
        ("straight", "straight", case.baseline_network()),
        ("tree", "tree", case.tree_plan().build()),
        (
            "serpentine",
            "manual",
            serpentine_network(case.nrows, case.ncols, pitch=4),
        ),
    ]
    tile_sizes = [2, 4, 6, 10]
    pressures = [5e3, 2e4]

    records = []
    for name, style, network in networks:
        stack = case.stack_with_network(network)
        records.extend(
            compare_models(
                stack,
                case.coolant,
                tile_sizes,
                pressures,
                network_name=name,
                style=style,
            )
        )

    # Fig. 9(a): error by thermal-cell size, split by network style.
    by_style = defaultdict(list)
    for record in records:
        by_style[(record.style, record.tile_size)].append(record)
    styles = sorted({r.style for r in records})
    rows = []
    for tile in tile_sizes:
        row = [f"{tile * cell_um:.0f} um"]
        for style in styles:
            members = by_style[(style, tile)]
            err = sum(m.error_abs for m in members) / len(members)
            row.append(f"{err:.3%}")
        rows.append(row)
    print(
        format_table(
            ["thermal cell"] + styles,
            rows,
            title="Fig. 9(a): mean relative error of source-layer nodes vs 4RM",
        )
    )

    # Fig. 9(b): speed-up by thermal-cell size.
    by_tile = aggregate_by(records, "tile_size")
    rows = [
        [
            f"{tile * cell_um:.0f} um",
            f"{by_tile[tile]['speedup']:.1f}x",
            f"{by_tile[tile]['time_4rm'] * 1e3:.1f} ms",
            f"{by_tile[tile]['time_2rm'] * 1e3:.1f} ms",
        ]
        for tile in tile_sizes
    ]
    print()
    print(
        format_table(
            ["thermal cell", "speed-up", "4RM solve", "2RM solve"],
            rows,
            title="Fig. 9(b): 2RM speed-up over 4RM",
        )
    )


if __name__ == "__main__":
    main()
