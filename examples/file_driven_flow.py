#!/usr/bin/env python3
"""A file-driven design flow: case bundle in, network file out.

Algorithm 1's inputs are "stack description and floorplan files"; this
example runs the whole loop through the text formats: export a benchmark
case as a bundle, reload it (as a collaborator would), design a network,
save it, and re-evaluate the saved artifact from scratch.

Run:  python examples/file_driven_flow.py
"""

import tempfile
from pathlib import Path

from repro.cooling import CoolingSystem, evaluate_problem1
from repro.iccad2015 import (
    load_case,
    load_case_bundle,
    read_network,
    save_case_bundle,
    write_network,
)
from repro.optimize import optimize_problem1


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workspace = Path(tmp)

        # 1. Export the benchmark case as a text bundle.
        case = load_case(2, grid_size=31)
        bundle_dir = workspace / "case2"
        save_case_bundle(case, bundle_dir)
        print(f"exported {case} to {bundle_dir.name}/ "
              f"({sum(f.stat().st_size for f in bundle_dir.iterdir())} bytes)")

        # 2. A collaborator reloads it -- no code shared, just files.
        loaded = load_case_bundle(bundle_dir)
        print(f"reloaded: {loaded}")

        # 3. Design a cooling network for it and save the artifact.
        result = optimize_problem1(loaded, quick=True, directions=(0,), seed=0)
        network_file = workspace / "design.txt"
        write_network(result.network, network_file)
        ev = result.evaluation
        print(
            f"designed: W_pump={ev.w_pump * 1e3:.3f} mW at "
            f"P_sys={ev.p_sys / 1e3:.2f} kPa "
            f"-> {network_file.name} ({network_file.stat().st_size} bytes)"
        )

        # 4. Anyone can re-evaluate the saved design from the files alone.
        network = read_network(network_file)
        system = CoolingSystem.for_network(
            loaded.base_stack(), network, loaded.coolant, model="4rm"
        )
        check = evaluate_problem1(
            system, loaded.delta_t_star, loaded.t_max_star
        ).raise_if_infeasible("saved design")
        print(
            f"re-evaluated from files: W_pump={check.w_pump * 1e3:.3f} mW, "
            f"DeltaT={check.delta_t:.2f} K, T_max={check.t_max:.2f} K  [OK]"
        )


if __name__ == "__main__":
    main()
