#!/usr/bin/env python3
"""Transient extension: a DVFS-style power step under fixed coolant flow.

The paper lists run-time thermal management (DVFS, adjustable flow rates) as
future work and notes the steady models "can be easily extended to transient
analysis".  This example exercises that extension: the stack starts cold,
heats toward steady state, then the die power doubles mid-run -- watch the
peak temperature and thermal gradient react.

Run:  python examples/transient_dvfs.py
"""

from repro import RC2Simulator, TransientSimulator
from repro.analysis import format_table
from repro.iccad2015 import load_case


def main() -> None:
    case = load_case(1, grid_size=31)
    stack = case.stack_with_network(case.baseline_network())
    steady = RC2Simulator(stack, case.coolant, tile_size=4)
    transient = TransientSimulator(steady, p_sys=10e3)

    def power_profile(t: float) -> float:
        """Nominal power for 1 s, then a 2x DVFS boost."""
        return 2.0 if t > 1.0 else 1.0

    trace = transient.run(
        duration=2.0,
        dt=0.02,
        store_every=10,
        power_scale=power_profile,
    )

    rows = [
        [
            f"{t:.2f}",
            f"{result.t_max:.2f}",
            f"{result.delta_t:.2f}",
            f"{power_profile(t):.0f}x",
        ]
        for t, result in zip(trace.times, trace.results)
    ]
    print(
        format_table(
            ["time (s)", "T_max (K)", "DeltaT (K)", "power"],
            rows,
            title="Cold start -> steady state -> 2x power step at t = 1 s",
        )
    )

    nominal = transient.steady_state()
    print(
        f"\nSteady state at nominal power: T_max = {nominal.t_max:.2f} K; "
        f"after the boost the stack settles near "
        f"T_max = {trace.final().t_max:.2f} K."
    )
    print(
        "A run-time controller would react by raising the pump pressure -- "
        "the flow-rate knob the paper's future work points to."
    )


if __name__ == "__main__":
    main()
