#!/usr/bin/env python3
"""Run-time thermal management: adaptive pump pressure under dynamic power.

The paper's future work: "combining cooling networks with run-time thermal
management techniques (e.g., DVFS and adjustable flow rates) to handle
dynamic die power."  This example closes that loop: a PI controller watches
the peak temperature and adjusts the pump while the die power cycles between
nominal and a 2x boost, and is compared against the two static policies --
constant worst-case pumping and no reaction at all.

Run:  python examples/runtime_control.py
"""

from repro import RC2Simulator
from repro.analysis import format_table
from repro.iccad2015 import load_case
from repro.thermal import PIController, run_controlled


def main() -> None:
    case = load_case(1, grid_size=31)
    stack = case.stack_with_network(case.baseline_network())
    steady = RC2Simulator(stack, case.coolant, tile_size=4)

    def boost(t: float) -> float:
        """Nominal power with periodic 2x bursts (DVFS-style)."""
        return 2.0 if (t % 2.0) > 1.0 else 1.0

    setpoint = steady.solve(2e4).t_max + 4.0  # a little above the 2x floor
    print(f"{case}")
    print(f"PI setpoint: T_max <= {setpoint:.1f} K under a 2x power square "
          "wave\n")

    controller = PIController(
        setpoint=setpoint, kp=60.0, ki=30.0, p_min=2e3, p_max=1e5, period=0.1
    )
    controlled = run_controlled(
        steady, controller, duration=8.0, control_period=0.1, dt=0.02,
        p_initial=2e3, power_profile=boost,
    )
    p_worst = max(controlled.pressures)
    constant = run_controlled(
        steady, lambda t, p: p_worst, duration=8.0, control_period=0.1,
        dt=0.02, p_initial=p_worst, power_profile=boost,
    )
    passive = run_controlled(
        steady, lambda t, p: 2e3, duration=8.0, control_period=0.1,
        dt=0.02, p_initial=2e3, power_profile=boost,
    )

    rows = []
    for name, trace in (
        ("PI control", controlled),
        ("constant worst-case", constant),
        ("no reaction", passive),
    ):
        late_peak = max(
            t for time, t in zip(trace.times, trace.t_max) if time > 4.0
        )
        rows.append(
            [
                name,
                f"{trace.mean_pumping_power * 1e3:.3f}",
                f"{late_peak:.2f}",
                f"{min(trace.pressures[1:]) / 1e3:.1f}"
                f"-{max(trace.pressures) / 1e3:.1f}",
            ]
        )
    print(
        format_table(
            ["policy", "mean W_pump (mW)", "settled peak (K)", "P range (kPa)"],
            rows,
            title="Runtime flow-rate control vs static policies",
        )
    )
    saving = 100 * (
        1 - controlled.mean_pumping_power / constant.mean_pumping_power
    )
    print(f"\nPI control spends {saving:.0f}% less pumping energy than "
          "constant worst-case provisioning at a comparable settled peak.")


if __name__ == "__main__":
    main()
