#!/usr/bin/env python3
"""Problem 2 end to end: minimize thermal gradient under a power budget.

Reproduces one row of Table 4 at reduced scale: straight baseline vs the
staged-SA tree network, both capped at ``W_pump* = 0.1%`` of the die power,
and shows the temperature-map contrast of Fig. 10 (P2 maps are flatter; P1
maps are hotter but cheaper to pump).

Run:  python examples/design_thermal_gradient.py [case_number] [grid_size]
"""

import sys
import time

from repro.analysis import (
    format_table,
    map_statistics,
    render_field,
    result_row,
    source_layer_map,
)
from repro.analysis.tables import improvement_percent
from repro.cooling import CoolingSystem
from repro.iccad2015 import load_case
from repro.optimize import best_straight_baseline, optimize_problem2


def main() -> None:
    case_number = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    grid_size = int(sys.argv[2]) if len(sys.argv) > 2 else 31
    case = load_case(case_number, grid_size=grid_size)
    w_star = case.w_pump_star()
    print(f"{case}")
    print(
        f"Problem 2: min DeltaT  s.t. W_pump <= {w_star * 1e3:.2f} mW, "
        f"T_max <= {case.t_max_star} K\n"
    )

    start = time.time()
    baseline = best_straight_baseline(case, "problem2", model="4rm")
    print(f"baseline: {baseline.name} ({time.time() - start:.1f} s)")

    start = time.time()
    ours = optimize_problem2(case, quick=True, directions=(0, 1), seed=0)
    print(
        f"ours: staged SA finished in {time.time() - start:.1f} s "
        f"({ours.total_simulations} simulations)\n"
    )

    rows = []
    for name, evaluation in (
        ("Baseline (straight)", baseline.evaluation),
        ("Ours (tree-like SA)", ours.evaluation),
    ):
        row = result_row(evaluation if evaluation.feasible else None)
        rows.append([name] + list(row.values()))
    headers = ["design", "P_sys (kPa)", "T_max (K)", "DeltaT (K)", "W_pump (mW)"]
    print(format_table(headers, rows, title=f"Case {case.number} (Table 4 row)"))

    if baseline.feasible and ours.evaluation.feasible:
        gain = improvement_percent(
            baseline.evaluation.delta_t, ours.evaluation.delta_t
        )
        print(f"\nThermal gradient reduction vs baseline: {gain:.1f}%")

    # Fig. 10: the bottom source layer's temperature map.
    system = CoolingSystem.for_network(
        case.base_stack(), ours.network, case.coolant, model="4rm"
    )
    result = system.evaluate(ours.evaluation.p_sys)
    field = source_layer_map(result)
    print("\nBottom source layer, optimized design "
          f"({map_statistics(field)}):")
    print(render_field(field, max_width=64))


if __name__ == "__main__":
    main()
