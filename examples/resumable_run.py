#!/usr/bin/env python3
"""Crash-safe checkpointing: interrupt a design run, resume it bitwise.

Runs the Problem 1 staged SA flow three times on the same case:

1. an uninterrupted *golden* run;
2. a checkpointed run that is interrupted mid-flight (a cooperative stop
   flag stands in for the SIGINT/SIGTERM the CLI's ``RunSupervisor``
   translates into the same hook) — it flushes a final checkpoint and
   raises ``RunInterrupted``;
3. a ``resume=True`` run from that checkpoint, which must finish with the
   bitwise-identical score, plan, and simulation count of the golden run.

The same behavior is available on the command line::

    python -m repro optimize --case 1 --quick --checkpoint-dir ckpt/
    # Ctrl-C / SIGTERM -> flushes a checkpoint, exits with code 75
    python -m repro optimize --case 1 --quick --checkpoint-dir ckpt/ --resume

Run:  python examples/resumable_run.py [case_number] [grid_size]
(defaults: case 1 at 21 x 21; takes a few seconds).
"""

import sys
import tempfile
import time

from repro import profiling
from repro.errors import RunInterrupted
from repro.iccad2015 import load_case
from repro.optimize import optimize_problem1
from repro.optimize.stages import (
    METRIC_FIXED_PRESSURE_GRADIENT,
    METRIC_LOWEST_FEASIBLE_POWER,
    StageConfig,
)

#: A miniature two-stage schedule so the example runs in seconds; real
#: runs would use the default (Table 1) schedules via ``quick=``.
STAGES = [
    StageConfig("coarse", 6, 2, 10, METRIC_FIXED_PRESSURE_GRADIENT, "2rm"),
    StageConfig("fine", 5, 1, 6, METRIC_LOWEST_FEASIBLE_POWER, "2rm"),
]


def summarize(result):
    return {
        "score": result.evaluation.score,
        "simulations": result.total_simulations,
        "params": result.plan.params().tolist(),
        "direction": result.direction,
    }


def main() -> None:
    case_number = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    grid_size = int(sys.argv[2]) if len(sys.argv) > 2 else 21
    case = load_case(case_number, grid_size=grid_size)
    print(f"{case}\n")

    def run(**kwargs):
        return optimize_problem1(
            case, stages=STAGES, directions=(0, 1), seed=3, **kwargs
        )

    start = time.time()
    golden = run()
    print(f"golden run:      {time.time() - start:.1f} s, "
          f"W_pump={golden.evaluation.w_pump * 1e3:.3f} mW, "
          f"{golden.total_simulations} simulations")

    with tempfile.TemporaryDirectory() as ckpt_dir:
        # Interrupt after the 5th checkpoint poll -- mid-SA, mid-stage.
        polls = [0]

        def stop_requested() -> bool:
            polls[0] += 1
            return polls[0] >= 5

        profiling.reset()
        try:
            run(
                checkpoint_dir=ckpt_dir,
                checkpoint_every=2,
                interrupt_check=stop_requested,
            )
            raise SystemExit("expected the run to be interrupted")
        except RunInterrupted as exc:
            print(f"interrupted run: stopped early ({exc})")

        # A fresh process would start here: new profiler, same directory.
        profiling.reset()
        start = time.time()
        resumed = run(checkpoint_dir=ckpt_dir, resume=True)
        print(f"resumed run:     {time.time() - start:.1f} s, "
              f"W_pump={resumed.evaluation.w_pump * 1e3:.3f} mW, "
              f"{resumed.total_simulations} simulations")

    assert summarize(resumed) == summarize(golden)
    print("\nresumed result is bitwise-identical to the golden run "
          f"(score {golden.evaluation.score:.6g}, "
          f"direction {golden.direction})")


if __name__ == "__main__":
    main()
