#!/usr/bin/env python3
"""Quickstart: simulate a liquid-cooled 3D IC with both thermal models.

Builds ICCAD 2015 benchmark case 1 at half scale, installs a straight-channel
cooling network, and runs the fast 2RM simulator and the 4RM reference model
at one operating point.  Prints the paper's three headline metrics (peak
temperature, thermal gradient, pumping power) plus the model agreement.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import RC2Simulator, RC4Simulator
from repro.analysis import render_network, source_layer_map
from repro.iccad2015 import load_case


def main() -> None:
    # Benchmark case 1: two dies, 200 um channels, DeltaT* = 15 K.
    case = load_case(1, scale=0.5)
    print(f"Loaded {case}")
    print(
        f"Constraints: DeltaT* = {case.delta_t_star} K, "
        f"T_max* = {case.t_max_star} K\n"
    )

    # A straight-channel network: the baseline nearly all prior work assumes.
    network = case.baseline_network(direction=0, pitch=2)
    print("Straight-channel cooling network (west inlets, east outlets):")
    print(render_network(network, max_width=120))

    stack = case.stack_with_network(network)
    p_sys = 15e3  # 15 kPa across inlets/outlets

    # Fast porous-medium model (2RM) with the paper's 400 um thermal cells.
    fast = RC2Simulator(stack, case.coolant, tile_size=4)
    result_fast = fast.solve(p_sys)
    print(f"2RM  ({fast.n_nodes:5d} nodes): {result_fast.summary()}")

    # Reference 4RM model: one node per basic cell per layer.
    reference = RC4Simulator(stack, case.coolant)
    result_ref = reference.solve(p_sys)
    print(f"4RM  ({reference.n_nodes:5d} nodes): {result_ref.summary()}")

    # Agreement on the bottom source layer (the paper's Fig. 9 metric).
    t2 = source_layer_map(result_fast)
    t4 = source_layer_map(result_ref)
    error = np.abs(t2 - t4) / t4
    print(f"\nMean relative error (2RM vs 4RM): {error.mean():.3%}")
    print(f"Energy balance error (4RM): {result_ref.energy_balance_error():.2e}")


if __name__ == "__main__":
    main()
