#!/usr/bin/env python3
"""The W_pump vs DeltaT trade-off frontier of competing networks.

The paper's closing remark: "the problem formulation can be chosen
according to preference between W_pump and DeltaT."  This example makes
that choice visible: sweep the operating pressure of a straight-channel
network and a tree-like network, extract each Pareto front, and print them
side by side -- wherever the tree's front lies below the straight one, the
flexible topology wins at *every* preference.

Run:  python examples/tradeoff_frontier.py [grid_size]
"""

import sys

import numpy as np

from repro.analysis import format_table, pareto_front, tradeoff_curve
from repro.cooling import CoolingSystem
from repro.iccad2015 import load_case


def main() -> None:
    grid_size = int(sys.argv[1]) if len(sys.argv) > 1 else 31
    case = load_case(1, grid_size=grid_size)
    pressures = np.geomspace(8e2, 6e4, 12)

    fronts = {}
    for name, network in (
        ("straight", case.baseline_network()),
        ("tree", case.tree_plan().build()),
    ):
        system = CoolingSystem.for_network(
            case.base_stack(), network, case.coolant, model="2rm"
        )
        curve = tradeoff_curve(system, pressures, t_max_star=case.t_max_star)
        fronts[name] = pareto_front(curve)

    rows = []
    for name, front in fronts.items():
        for pt in front:
            rows.append(
                [
                    name,
                    f"{pt.p_sys / 1e3:.2f}",
                    f"{pt.w_pump * 1e3:.3f}",
                    f"{pt.delta_t:.2f}",
                    f"{pt.t_max:.1f}",
                ]
            )
    print(f"{case}\n")
    print(
        format_table(
            ["network", "P_sys (kPa)", "W_pump (mW)", "DeltaT (K)", "T_max (K)"],
            rows,
            title="Pareto-efficient operating points (pressure sweep)",
        )
    )

    # Where does each network win?
    print("\nPreference guide:")
    for budget_mw in (0.05, 0.5, 5.0):
        best = {}
        for name, front in fronts.items():
            feasible = [pt for pt in front if pt.w_pump * 1e3 <= budget_mw]
            if feasible:
                best[name] = min(pt.delta_t for pt in feasible)
        if best:
            winner = min(best, key=best.get)
            summary = ", ".join(
                f"{name}: {dt:.2f} K" for name, dt in sorted(best.items())
            )
            print(f"  budget {budget_mw:5.2f} mW -> {summary}   "
                  f"[{winner} wins]")


if __name__ == "__main__":
    main()
