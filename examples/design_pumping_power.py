#!/usr/bin/env python3
"""Problem 1 end to end: minimize pumping power on a benchmark case.

Reproduces one row of Table 3 at reduced scale: the straight-channel
baseline, the manual-design comparator, and the staged-SA tree-like network
are each evaluated by their lowest feasible pumping power under the case's
``DeltaT*`` and ``T_max*`` constraints.

Run:  python examples/design_pumping_power.py [case_number] [grid_size]
(defaults: case 1 at 31 x 31; expect about a minute of SA search).
"""

import sys
import time

from repro.analysis import format_table, render_network, result_row
from repro.analysis.tables import improvement_percent
from repro.iccad2015 import load_case
from repro.optimize import (
    best_manual_design,
    best_straight_baseline,
    optimize_problem1,
)


def main() -> None:
    case_number = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    grid_size = int(sys.argv[2]) if len(sys.argv) > 2 else 31
    case = load_case(case_number, grid_size=grid_size)
    print(f"{case}")
    print(
        f"Problem 1: min W_pump  s.t. DeltaT <= {case.delta_t_star} K, "
        f"T_max <= {case.t_max_star} K\n"
    )

    start = time.time()
    baseline = best_straight_baseline(case, "problem1", model="4rm")
    print(f"baseline: best straight network is {baseline.name} "
          f"({time.time() - start:.1f} s)")

    start = time.time()
    manual = best_manual_design(case, "problem1", model="4rm")
    print(f"manual:   best manual style is {manual.name} "
          f"({time.time() - start:.1f} s)")

    start = time.time()
    ours = optimize_problem1(case, quick=True, directions=(0, 1), seed=0)
    print(
        f"ours:     staged SA finished in {time.time() - start:.1f} s "
        f"({ours.total_simulations} simulations, direction {ours.direction})\n"
    )

    rows = []
    for name, evaluation in (
        ("Baseline (straight)", baseline.evaluation),
        ("Manual", manual.evaluation),
        ("Ours (tree-like SA)", ours.evaluation),
    ):
        row = result_row(evaluation if evaluation.feasible else None)
        rows.append([name] + list(row.values()))
    headers = ["design", "P_sys (kPa)", "T_max (K)", "DeltaT (K)", "W_pump (mW)"]
    print(format_table(headers, rows, title=f"Case {case.number} (Table 3 row)"))

    if baseline.feasible and ours.evaluation.feasible:
        saving = improvement_percent(
            baseline.evaluation.w_pump, ours.evaluation.w_pump
        )
        print(f"\nPumping power saving vs straight baseline: {saving:.1f}%")

    print("\nOptimized tree-like network:")
    print(render_network(ours.network, max_width=150))


if __name__ == "__main__":
    main()
