#!/usr/bin/env python3
"""Watch the staged SA search converge, stage by stage.

Runs Problem 1 on a small case and prints a sparkline of the best-so-far
cost for every SA round of every stage -- the rough/quick early stages fan
out in many rounds, the accurate late stages polish the winner.

Run:  python examples/convergence_trace.py
"""

import math

from repro.analysis.render import sparkline
from repro.iccad2015 import load_case
from repro.optimize import optimize_problem1


def main() -> None:
    case = load_case(1, grid_size=31)
    result = optimize_problem1(case, quick=True, directions=(0,), seed=0)

    print(f"{case}\nProblem 1 staged SA convergence "
          f"({result.total_simulations} simulations total)\n")
    for report in result.stage_reports:
        print(f"{report.stage}  (selected cost "
              f"{_fmt(report.selected_cost)}, "
              f"{report.simulations} simulations)")
        for i, history in enumerate(report.histories):
            best = history.best_costs[-1] if history.best_costs else math.inf
            print(
                f"  round {i}: {sparkline(history.best_costs, width=48):<48} "
                f"best {_fmt(best)}  "
                f"acc {history.acceptance_rate:.0%}"
            )
        print()

    ev = result.evaluation
    print(
        f"final 4RM evaluation: P_sys={ev.p_sys / 1e3:.2f} kPa  "
        f"W_pump={ev.w_pump * 1e3:.3f} mW  T_max={ev.t_max:.2f} K  "
        f"DeltaT={ev.delta_t:.2f} K"
    )


def _fmt(cost: float) -> str:
    if math.isinf(cost):
        return "inf"
    if cost < 1e-1:
        return f"{cost * 1e3:.3f} mW"
    return f"{cost:.2f} K"


if __name__ == "__main__":
    main()
